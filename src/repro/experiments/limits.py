"""§6.3 "Scenarios where CEIO's benefits are limited".

Two negative results the paper reports (and which a faithful reproduction
must also show):

- **low memory pressure**: a small-footprint workload (64 B packets with
  VxLAN decapsulation) fits in the LLC; baseline and CEIO perform the
  same, with negligible miss rates;
- **large packets**: 9000 B jumbo frames amortise per-packet costs so the
  baseline reaches line rate even while missing the LLC.
"""

from __future__ import annotations

from typing import Optional

from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run"]


DEFAULT_SEED = 23


def _low_pressure(arch: str, quick: bool, seed: int) -> tuple:
    """64B VxLAN-decap-style workload: the total descriptor footprint
    (2 flows x 4096 buffers x ~106 B frames) fits inside the DDIO
    partition, so the LLC cannot be the bottleneck for anyone."""
    config = ScenarioConfig(
        arch=arch, n_involved=2, payload=64, outstanding=24,
        warmup=(300 * US if quick else 600 * US),
        duration=(400 * US if quick else 800 * US), seed=seed)
    m = Scenario(config).build().run_measure()
    return m.involved_mpps, m.llc_miss_rate


def _jumbo(arch: str, quick: bool, seed: int) -> tuple:
    """9000B jumbo echo: 16 KB I/O buffers, line rate despite misses."""
    config = ScenarioConfig(
        arch=arch, n_involved=8, payload=9000, io_buf_size=16 * 1024,
        outstanding=32,
        warmup=(300 * US if quick else 600 * US),
        duration=(400 * US if quick else 800 * US), seed=seed)
    m = Scenario(config).build().run_measure()
    gbps = m.involved_mpps * 9000 * 8 / 1000.0
    return m.involved_mpps, gbps, m.llc_miss_rate


def run(quick: bool = True,
        seed: Optional[int] = None) -> ExperimentResult:
    root_seed = DEFAULT_SEED if seed is None else seed
    result = ExperimentResult(
        exp_id="limits",
        title="Scenarios with limited benefit: low pressure & jumbo frames",
        paper_claim=("64B/VxLAN: all systems ~equal with <5% misses; "
                     "9000B jumbo: baseline reaches line rate even at a "
                     "48% miss rate"),
    )
    result.headers = ["scenario", "arch", "mpps", "gbps", "miss_%"]

    lp = {}
    for arch in ("baseline", "ceio"):
        mpps, miss = _low_pressure(arch, quick, root_seed)
        lp[arch] = (mpps, miss)
        result.rows.append(["64B-low-pressure", arch, mpps,
                            mpps * 64 * 8 / 1000.0, miss * 100])
    result.check(
        "low pressure: baseline ~= CEIO (within 10%)",
        abs(lp["baseline"][0] - lp["ceio"][0])
        <= 0.10 * max(lp["ceio"][0], 1e-9),
        f"baseline {lp['baseline'][0]:.1f} vs ceio {lp['ceio'][0]:.1f} Mpps")
    result.check(
        "low pressure: miss rate < 5% even for the baseline",
        lp["baseline"][1] < 0.05,
        f"{lp['baseline'][1]*100:.1f}%")

    jb = {}
    for arch in ("baseline", "ceio"):
        mpps, gbps, miss = _jumbo(arch, quick, root_seed)
        jb[arch] = (mpps, gbps, miss)
        result.rows.append(["9000B-jumbo", arch, mpps, gbps, miss * 100])
    result.check(
        "jumbo: baseline within 15% of CEIO despite its misses",
        jb["baseline"][1] >= 0.85 * jb["ceio"][1],
        f"baseline {jb['baseline'][1]:.0f} vs ceio {jb['ceio'][1]:.0f} Gbps")
    result.check(
        "jumbo: baseline tolerates a substantial miss rate",
        jb["baseline"][2] > 0.2 or jb["baseline"][1] > 150,
        f"miss {jb['baseline'][2]*100:.0f}%, {jb['baseline'][1]:.0f} Gbps")
    return result
