"""SLO-preserving capacity: binary search + flash-crowd guardrails.

Two questions the closed-loop figures cannot answer:

1. **How much open-loop demand can each architecture absorb before its
   declared SLO breaks?** A deterministic fixed-iteration binary search
   over steady offered load (``repro.demand``) finds the highest rate at
   which the KV tenant still meets ``p99.9 <= 50us`` at a goodput floor
   of 72 Mpps. The DDIO baseline collapses just above the fabric's ~81
   Mpps service ceiling: the standing ring backlog overflows its DDIO
   partition, per-packet service turns miss-laden, and goodput falls to
   a fraction of capacity (the classic congestion-collapse knee). CEIO
   with admission control *sheds* the excess instead — descriptor and
   DDIO spend happen only for admitted packets — so its measured ceiling
   sits strictly above the baseline's.

2. **What do the guardrails buy during a flash crowd?** The
   ``flash-crowd`` template (demand ramps 32 -> 128 Mpps against the ~81
   Mpps ceiling) runs twice: guarded (shipped template) and the
   no-guardrail ablation (same scenario, admission control off). The
   guarded run holds the windowed p99.9 flat at ~10us while metering the
   excess into ``shed``; the ablation's tail diverges window over window
   as the standing queue grows — same goodput, unbounded latency.

Determinism: the search probes a fixed number of midpoints from fixed
bounds, every probe is a fully declarative scenario (canonical JSON in
the trace), and the SLO tracker samples on a fixed cadence — results are
byte-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..runner.sweep import Point, make_point, run_points_serial
from ..scenario import canonical, template
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

DEFAULT_SEED = 7
_FN = "repro.experiments.capacity:run_point"

ARCHS = ["baseline", "ceio"]

#: The declared SLO the search preserves: windowed p99.9 at or below
#: this, goodput at or above the floor (just under the ~81 Mpps fabric
#: service ceiling, so "meets SLO" means "delivers capacity with a
#: bounded tail", not "starves quietly").
SLO_P999_US = 50.0
SLO_GOODPUT_MPPS = 72.0

#: Search bracket, calibrated so the low bound meets the SLO for every
#: architecture and the high bound breaks it for every architecture.
SEARCH_LO = 64.0
SEARCH_HI = 160.0
ITERS_QUICK = 4
ITERS_FULL = 6


def _steady_spec(arch: str, rate_mpps: float, seed: int,
                 quick: bool) -> Dict[str, Any]:
    """One probe of the search: steady open-loop demand at ``rate_mpps``
    into a single receiver (the open-loop twin of ``incast-8``). CEIO
    runs guarded — admission control *is* the overload story under test.
    """
    host: Dict[str, Any] = {"arch": arch, "cores": 16}
    if arch == "ceio":
        host["ceio"] = {"admission_control": True,
                        "admission_ring_limit": 64}
    return {
        "version": 1,
        "name": f"capacity-{arch}",
        "seed": seed,
        "topology": {"kind": "star",
                     "params": {"n_clients": 8, "n_servers": 1}},
        "hosts": {"*": host},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "host": "s0",
             "flows": 8, "payload": 144},
        ],
        "demand": {
            "window_us": 50.0,
            "profiles": {"flat": {"kind": "steady",
                                  "rate_mpps": rate_mpps}},
            "tenants": {"kv": {"profile": "flat",
                               "slo": {"p999_us": SLO_P999_US,
                                       "min_goodput_mpps":
                                           SLO_GOODPUT_MPPS}}},
        },
        "measure": {"warmup_us": 150.0,
                    "duration_us": 250.0 if quick else 300.0},
    }


def _flash_spec(guarded: bool, seed: int) -> Dict[str, Any]:
    """The shipped ``flash-crowd`` template, or its no-guardrail
    ablation (identical demand and topology, stock CEIO config)."""
    spec = template("flash-crowd")
    spec["seed"] = seed
    if not guarded:
        del spec["hosts"]["*"]["ceio"]
    return spec


def _probe(spec: Dict[str, Any]) -> Dict[str, Any]:
    from ..workloads.topo_scenario import compile_scenario
    scenario = compile_scenario(spec)
    measurement = scenario.run_measure()["s0"]
    slo = measurement.slo["kv"]
    audit = measurement.audit or {}
    return {
        "scenario": scenario,
        "slo": slo,
        "audit_ok": bool(audit.get("ok", False)),
        "audit_violations": len(audit.get("violations", ())),
    }


def _search(arch: str, seed: int, quick: bool) -> Dict[str, Any]:
    lo, hi = SEARCH_LO, SEARCH_HI
    iters = ITERS_QUICK if quick else ITERS_FULL
    trace: List[Dict[str, Any]] = []
    audits_ok = True
    for _ in range(iters):
        rate = round((lo + hi) / 2.0, 2)
        probe = _probe(_steady_spec(arch, rate, seed, quick))
        slo = probe["slo"]
        audits_ok = audits_ok and probe["audit_ok"]
        trace.append({
            "rate_mpps": rate,
            "goodput_mpps": slo["goodput_mpps"],
            "p999_us": slo["p999_us"],
            "shed": slo["shed"],
            "ok": slo["ok"],
        })
        if slo["ok"]:
            lo = rate
        else:
            hi = rate
    return {"ceiling_mpps": lo, "trace": trace, "audit_ok": audits_ok}


def _flash(guarded: bool, seed: int) -> Dict[str, Any]:
    spec = _flash_spec(guarded, seed)
    probe = _probe(spec)
    slo = probe["slo"]
    tracker = probe["scenario"].slo_trackers["s0"]
    warmup_ns = spec["measure"]["warmup_us"] * 1000.0
    trail = [round(w["p999_us"], 2)
             for w in tracker.tenant_windows("kv", since=warmup_ns)]
    return {
        "goodput_mpps": slo["goodput_mpps"],
        "p999_us": slo["p999_us"],
        "worst_p999_us": slo["worst_p999_us"],
        "shed": slo["shed"],
        "ok": slo["ok"],
        "trail_p999_us": trail,
        "audit_ok": probe["audit_ok"],
    }


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    pts: List[Point] = []
    for arch in ARCHS:
        params = {"mode": "search", "arch": arch, "quick": quick}
        pts.append(make_point("capacity", _FN, params, seed, DEFAULT_SEED,
                              label=f"search.{arch}"))
    for guarded in (True, False):
        name = "guarded" if guarded else "unguarded"
        params = {"mode": "flash", "guarded": guarded}
        point = make_point("capacity", _FN, params, seed, DEFAULT_SEED,
                           label=f"flash.{name}")
        pts.append(Point(
            exp_id=point.exp_id, fn=point.fn, params=point.params,
            seed=point.seed, label=point.label,
            scenario=canonical(_flash_spec(guarded, point.seed))))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    if params["mode"] == "search":
        return _search(params["arch"], seed, params["quick"])
    return _flash(params["guarded"], seed)


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="capacity",
        title="SLO-preserving capacity search + flash-crowd guardrails",
        paper_claim=("admission control and load shedding let CEIO "
                     "absorb open-loop overload with a bounded tail, "
                     "pushing its SLO-preserving capacity ceiling "
                     "strictly above the DDIO baseline's collapse "
                     "point"),
    )
    result.headers = ["point", "ceiling/goodput", "p999_us", "shed",
                      "ok", "audit_ok"]

    ceilings: Dict[str, float] = {}
    audits_ok = True
    for arch in ARCHS:
        value = results[f"capacity/search.{arch}"]
        ceilings[arch] = value["ceiling_mpps"]
        audits_ok = audits_ok and value["audit_ok"]
        last = value["trace"][-1]
        # "ok" for a search row = the probed SLO outcomes are monotone
        # around the reported ceiling (pass at/below, fail above).
        bracket = all(t["ok"] == (t["rate_mpps"] <= value["ceiling_mpps"])
                      for t in value["trace"])
        result.rows.append([
            f"search.{arch}", value["ceiling_mpps"], last["p999_us"],
            last["shed"], bracket, value["audit_ok"]])

    flash: Dict[str, Dict[str, Any]] = {}
    for name in ("guarded", "unguarded"):
        value = results[f"capacity/flash.{name}"]
        flash[name] = value
        audits_ok = audits_ok and value["audit_ok"]
        result.rows.append([
            f"flash.{name}", value["goodput_mpps"], value["p999_us"],
            value["shed"], value["ok"], value["audit_ok"]])

    result.check("every probe passes the conservation audit", audits_ok)
    result.check_ratio(
        "guarded CEIO capacity ceiling strictly above baseline",
        ceilings["ceio"], ceilings["baseline"], 1.05, 10.0)

    guarded, unguarded = flash["guarded"], flash["unguarded"]
    result.check(
        "flash crowd: guarded CEIO meets its declared SLO",
        guarded["ok"],
        f"p999 {guarded['p999_us']:.1f}us, worst window "
        f"{guarded['worst_p999_us']:.1f}us vs {SLO_P999_US:.0f}us target")
    result.check(
        "flash crowd: guarded CEIO sheds the excess",
        guarded["shed"] > 0 and unguarded["shed"] == 0,
        f"{guarded['shed']:.0f} packets shed (ablation: "
        f"{unguarded['shed']:.0f})")
    result.check(
        "flash crowd: shedding costs no goodput",
        guarded["goodput_mpps"] >= 0.99 * unguarded["goodput_mpps"],
        f"guarded {guarded['goodput_mpps']:.2f} vs unguarded "
        f"{unguarded['goodput_mpps']:.2f} Mpps")
    trail = unguarded["trail_p999_us"]
    mid = len(trail) // 2
    result.check(
        "flash crowd: no-guardrail ablation's tail diverges",
        not unguarded["ok"] and trail[-1] >= 2.0 * max(trail[mid], 1.0),
        f"windowed p999 {trail[mid]:.1f} -> {trail[-1]:.1f}us over the "
        f"crowd (worst {unguarded['worst_p999_us']:.1f}us)")
    result.check(
        "flash crowd: guarded tail stays flat where ablation grows",
        guarded["worst_p999_us"] <= SLO_P999_US
        and unguarded["worst_p999_us"] > SLO_P999_US,
        f"guarded worst window {guarded['worst_p999_us']:.1f}us vs "
        f"ablation {unguarded['worst_p999_us']:.1f}us")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
