"""Shard chaos suite: faults, worker kills, and recovery at scale.

The sharded executor's whole claim is that it is *invisible*: same
bytes out, fault plans included, workers dying included. This suite
attacks that claim on the 64-host incast (4 leaves x 2 spines — a
topology that genuinely splits four ways with cross-shard traffic on
every spine hop) across the ceio / shring / baseline architectures:

- **fault points** sweep a host-site fault plan's magnitude (loss on
  the incast server's last hop plus a CPU slowdown window) and assert
  the 4-shard run is byte-identical to the single kernel, then add a
  ``net.channel`` loss on the cut links and assert inline and process
  mode agree byte-for-byte (the channel site is coordinator-level, so
  its determinism gate is inline == process, not sharded == single);
- **kill points** run process mode with a seeded
  :class:`~repro.runner.shardpool.ShardPoolConfig` kill plan — workers
  shot at randomized barrier windows — and assert the journal-replay
  recovery reproduces the undisturbed run byte-for-byte, with
  ``shard_restarted`` / ``shard_replay_done`` attributed in the runlog
  and the merged audit reconciling to zero violations.

Every stochastic choice (kill windows, victim shards) derives from the
point's seed, so the suite is bit-reproducible for any ``--jobs``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from ..faults import FaultPlan, FaultSpec
from ..runner.shardpool import ShardPoolConfig
from ..runner.sweep import Point, make_point, run_points_serial
from ..shard import run_sharded
from ..sim.rng import RngRegistry
from ..sim.units import US
from ..workloads.topo_scenario import TopoScenario
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

DEFAULT_SEED = 29
_FN = "repro.experiments.shard_chaos:run_point"

ARCHES = ["ceio", "shring", "baseline"]
ARCHES_QUICK = ["ceio"]
MAGS_FULL = [0.02, 0.1]
MAGS_QUICK = [0.05]

SHARDS = 4
#: Workers shot per kill point (randomized barrier windows).
N_KILLS = 2


def _measure(quick: bool) -> Dict[str, float]:
    return ({"warmup_us": 20.0, "duration_us": 60.0} if quick
            else {"warmup_us": 100.0, "duration_us": 250.0})


def _spec(arch: str, seed: int, quick: bool,
          faults: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """The 64-host incast of ``benchmarks/test_shard_scaling.py``, arch
    and fault plan parameterised."""
    spec: Dict[str, Any] = {
        "version": 1,
        "name": "shard-chaos-incast",
        "seed": seed,
        "topology": {"kind": "leaf_spine",
                     "params": {"leaves": 4, "spines": 2,
                                "hosts_per_leaf": 16,
                                "servers_per_leaf": 1}},
        "hosts": {"*": {"arch": arch, "cores": 50}},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "host": "l0s0",
             "flows": 48, "payload": 144, "outstanding": 8}],
        "measure": _measure(quick),
    }
    if faults:
        spec["fault_plan"] = faults
    return spec


def _host_plan(magnitude: float, quick: bool) -> FaultPlan:
    """Host-site faults inside the measurement window: loss on the
    incast server's last hop, a slowdown window on its cores."""
    measure = _measure(quick)
    start = (measure["warmup_us"] + 0.2 * measure["duration_us"]) * US
    duration = 0.5 * measure["duration_us"] * US
    return FaultPlan((
        FaultSpec("net.link", "loss", start=start, duration=duration,
                  magnitude=magnitude, host="l0s0"),
        FaultSpec("hw.cpu", "slowdown", start=start, duration=duration,
                  magnitude=1.0 + 10.0 * magnitude, host="l0s0"),
    ))


def _channel_plan(magnitude: float, quick: bool) -> FaultPlan:
    measure = _measure(quick)
    start = (measure["warmup_us"] + 0.2 * measure["duration_us"]) * US
    duration = 0.5 * measure["duration_us"] * US
    return FaultPlan((
        FaultSpec("net.channel", "loss", start=start, duration=duration,
                  magnitude=magnitude),))


def _payload(results: Mapping[str, Any]) -> str:
    return json.dumps(results, sort_keys=True)


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    arches = ARCHES_QUICK if quick else ARCHES
    mags = MAGS_QUICK if quick else MAGS_FULL
    pts = []
    for arch in arches:
        for mag in mags:
            plan = _host_plan(mag, quick)
            params = {"mode": "fault", "arch": arch, "magnitude": mag,
                      "quick": quick, "faults": plan.to_dicts()}
            pts.append(make_point(
                "shard_chaos", _FN, params, seed, DEFAULT_SEED,
                label=f"fault.{arch}.m{mag:g}", faults=plan.canonical()))
    for arch in arches:
        plan = _host_plan(mags[0], quick)
        params = {"mode": "kill", "arch": arch, "quick": quick,
                  "faults": plan.to_dicts()}
        pts.append(make_point(
            "shard_chaos", _FN, params, seed, DEFAULT_SEED,
            label=f"kill.{arch}", faults=plan.canonical()))
    return pts


def _run_fault_point(params: Mapping[str, Any],
                     seed: int) -> Dict[str, Any]:
    arch, quick = params["arch"], params["quick"]
    mag = params["magnitude"]
    host_faults = list(params["faults"])
    single = TopoScenario(_spec(arch, seed, quick, host_faults)).run()
    stats: Dict[str, Any] = {}
    sharded = run_sharded(_spec(arch, seed, quick, host_faults), SHARDS,
                          stats=stats)
    # Channel faults on top: the determinism gate is inline == process
    # (the single kernel has no cut links to fault).
    full = host_faults + _channel_plan(mag, quick).to_dicts()
    chan_stats: Dict[str, Any] = {}
    chan_inline = run_sharded(_spec(arch, seed, quick, full), SHARDS,
                              stats=chan_stats)
    chan_process = run_sharded(_spec(arch, seed, quick, full), SHARDS,
                               mode="process")
    return {
        "goodput_mpps": single["l0s0"]["involved_mpps"],
        "sharded_identical": _payload(sharded) == _payload(single),
        "channel_identical":
            _payload(chan_inline) == _payload(chan_process),
        "channel_dropped": chan_stats["channel"]["dropped"],
        "rounds": stats["rounds"],
        "audit_violations":
            len(sharded["l0s0"]["audit"]["violations"])
            + len(chan_inline["l0s0"]["audit"]["violations"]),
    }


def _run_kill_point(params: Mapping[str, Any],
                    seed: int) -> Dict[str, Any]:
    arch, quick = params["arch"], params["quick"]
    faults = list(params["faults"])
    stats: Dict[str, Any] = {}
    healthy = run_sharded(_spec(arch, seed, quick, faults), SHARDS,
                          mode="process", stats=stats)
    rounds = stats["rounds"]
    rng = RngRegistry(seed).stream(f"shard_chaos.kill.{arch}")
    windows = sorted(rng.sample(range(1, max(2, rounds - 1)),
                                min(N_KILLS, max(1, rounds - 2))))
    kill_plan = tuple((w, rng.randrange(SHARDS)) for w in windows)
    with tempfile.TemporaryDirectory() as tmp:
        runlog = Path(tmp) / "runlog.jsonl"
        cfg = ShardPoolConfig(restart_backoff_s=0.0, runlog=str(runlog),
                              kill_plan=kill_plan)
        recovered = run_sharded(_spec(arch, seed, quick, faults), SHARDS,
                                mode="process", pool_config=cfg)
        with open(runlog, encoding="utf-8") as fh:
            events = [json.loads(line)["event"] for line in fh]
    return {
        "goodput_mpps": healthy["l0s0"]["involved_mpps"],
        "recovered_identical": _payload(recovered) == _payload(healthy),
        "kills": len(kill_plan),
        "restarts": events.count("shard_restarted"),
        "replays": events.count("shard_replay_done"),
        "rounds": rounds,
        "audit_violations":
            len(recovered["l0s0"]["audit"]["violations"]),
    }


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    if params["mode"] == "kill":
        return _run_kill_point(params, seed)
    return _run_fault_point(params, seed)


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="shard_chaos",
        title="Sharded execution under faults and worker kills",
        paper_claim=("Sharded execution is observationally invisible: "
                     "fault plans, coordinator-level channel faults, "
                     "and journal-replay recovery from worker kills all "
                     "reproduce the reference run byte-for-byte with a "
                     "balanced merged audit"),
    )
    result.headers = ["point", "goodput_mpps", "identical", "rounds",
                      "restarts", "audit_violations"]
    arches = ARCHES_QUICK if quick else ARCHES
    mags = MAGS_QUICK if quick else MAGS_FULL
    for arch in arches:
        for mag in mags:
            label = f"fault.{arch}.m{mag:g}"
            value = results[f"shard_chaos/{label}"]
            result.rows.append([
                label, value["goodput_mpps"],
                value["sharded_identical"] and value["channel_identical"],
                value["rounds"], 0, value["audit_violations"]])
            result.check(
                f"{label}: {SHARDS}-shard faulted run is byte-identical "
                "to the single kernel",
                value["sharded_identical"],
                f"{value['rounds']} barrier rounds")
            result.check(
                f"{label}: channel faults agree inline == process",
                value["channel_identical"],
                f"{value['channel_dropped']} cut-link messages dropped")
            result.check(
                f"{label}: channel loss actually bit",
                value["channel_dropped"] > 0,
                f"{value['channel_dropped']} drops")
            result.check(
                f"{label}: merged audits reconcile",
                value["audit_violations"] == 0,
                f"{value['audit_violations']} violations")
    for arch in arches:
        label = f"kill.{arch}"
        value = results[f"shard_chaos/{label}"]
        result.rows.append([
            label, value["goodput_mpps"], value["recovered_identical"],
            value["rounds"], value["restarts"],
            value["audit_violations"]])
        result.check(
            f"{label}: recovered run is byte-identical to the "
            "undisturbed one",
            value["recovered_identical"],
            f"{value['kills']} worker kill(s), {value['restarts']} "
            "restart(s)")
        result.check(
            f"{label}: every kill was recovered by journal replay",
            value["restarts"] >= value["kills"]
            and value["replays"] == value["restarts"],
            f"{value['replays']} replay(s) for {value['restarts']} "
            "restart(s)")
        result.check(
            f"{label}: recovered audit reconciles",
            value["audit_violations"] == 0,
            f"{value['audit_violations']} violations")
    result.notes.append(
        "channel faults are a declared no-op at --shards 1, so their "
        "determinism gate is inline == process at fixed shard count; "
        "host-site faults are gated against the single kernel directly")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
