"""Table 4: mixed CPU-involved / CPU-bypass flows, with CEIO's
optimisations ablated.

Eight flows at involved:bypass ratios 3:1, 1:1, 1:3. Three systems:
Baseline, "CEIO w/o optimization" (no credit reallocation, no async slow
path, eager credit release), and full CEIO. Paper: full CEIO improves the
CPU-involved throughput 1.71-1.94x over baseline and always beats the
unoptimised variant — credit reallocation matters most when involved flows
dominate; the SW-ring/async machinery matters most when bypass dominates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import CeioConfig
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "RATIOS"]

RATIOS = [(6, 2), (4, 4), (2, 6)]  # 3:1, 1:1, 1:3 over 8 flows


def _ceio_no_opt() -> CeioConfig:
    return CeioConfig(lazy_release=False, credit_reallocation=False,
                      async_drain=False)


def _measure(arch: str, involved: int, bypass: int, quick: bool,
             ceio: CeioConfig = None) -> float:
    # Deep client pipelines: the bypass traffic inflates the fabric RTT, so
    # a shallow closed loop would cap the RPC clients below the server's
    # CPU capacity and hide the cache effect this table measures.
    config = ScenarioConfig(
        arch=arch, n_involved=involved, n_bypass=bypass,
        payload=144, bypass_payload=1024, chunk_packets=32,
        outstanding=2048,
        warmup=(400 * US if quick else 800 * US),
        duration=(500 * US if quick else 1000 * US),
        seed=17, ceio=ceio)
    return Scenario(config).build().run_measure().involved_mpps


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table4",
        title="Mixed I/O flows: CPU-involved Mpps, CEIO ablation",
        paper_claim=("CEIO 1.71-1.94x over baseline across ratios; "
                     "optimisations lift the unoptimised variant at every "
                     "ratio (1.53->1.94x at 3:1, 1.16->1.71x at 1:3)"),
    )
    result.headers = ["ratio", "baseline_mpps", "ceio_noopt_mpps",
                      "noopt_x", "ceio_mpps", "ceio_x"]
    data: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
    for involved, bypass in RATIOS:
        base = _measure("baseline", involved, bypass, quick)
        noopt = _measure("ceio", involved, bypass, quick, _ceio_no_opt())
        full = _measure("ceio", involved, bypass, quick)
        data[(involved, bypass)] = (base, noopt, full)
        result.rows.append([f"{involved//2}:{bypass//2}", base, noopt,
                            noopt / base, full, full / base])

    for (involved, bypass), (base, noopt, full) in data.items():
        ratio = f"{involved//2}:{bypass//2}"
        if involved >= bypass:
            result.check_ratio(f"{ratio}: full CEIO speedup over baseline",
                               full, base, 1.2)
        result.check(f"{ratio}: optimisations add throughput",
                     full >= noopt * 0.98,
                     f"full {full:.1f} vs no-opt {noopt:.1f} Mpps")
    result.notes.append(
        "divergence: at 1:3 our baseline's two RPC flows end up "
        "network-share-limited below their miss-free CPU capacity (the "
        "simulated DCTCP fabric throttles them alongside the bulk flows), "
        "so the paper's 1.71x baseline gap does not reproduce at that "
        "ratio; the optimisation ordering (full CEIO > unoptimised) does")
    return result
