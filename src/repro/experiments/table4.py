"""Table 4: mixed CPU-involved / CPU-bypass flows, with CEIO's
optimisations ablated.

Eight flows at involved:bypass ratios 3:1, 1:1, 1:3. Three systems:
Baseline, "CEIO w/o optimization" (no credit reallocation, no async slow
path, eager credit release), and full CEIO. Paper: full CEIO improves the
CPU-involved throughput 1.71-1.94x over baseline and always beats the
unoptimised variant — credit reallocation matters most when involved flows
dominate; the SW-ring/async machinery matters most when bypass dominates.

Sweep decomposition: one point per (system, flow ratio).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core import CeioConfig
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect", "RATIOS"]

RATIOS = [(6, 2), (4, 4), (2, 6)]  # 3:1, 1:1, 1:3 over 8 flows
SYSTEMS = ["baseline", "ceio-noopt", "ceio"]
DEFAULT_SEED = 17
_FN = "repro.experiments.table4:run_point"


def _ceio_no_opt() -> CeioConfig:
    return CeioConfig(lazy_release=False, credit_reallocation=False,
                      async_drain=False)


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    pts = []
    for involved, bypass in RATIOS:
        for system in SYSTEMS:
            params = {"system": system, "involved": involved,
                      "bypass": bypass, "quick": quick}
            pts.append(make_point(
                "table4", _FN, params, seed, DEFAULT_SEED,
                label=f"{system}.{involved}-{bypass}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    system = params["system"]
    arch = "baseline" if system == "baseline" else "ceio"
    ceio = _ceio_no_opt() if system == "ceio-noopt" else None
    quick = params["quick"]
    # Deep client pipelines: the bypass traffic inflates the fabric RTT, so
    # a shallow closed loop would cap the RPC clients below the server's
    # CPU capacity and hide the cache effect this table measures.
    config = ScenarioConfig(
        arch=arch, n_involved=params["involved"], n_bypass=params["bypass"],
        payload=144, bypass_payload=1024, chunk_packets=32,
        outstanding=2048,
        warmup=(400 * US if quick else 800 * US),
        duration=(500 * US if quick else 1000 * US),
        seed=seed, ceio=ceio)
    return {"mpps": Scenario(config).build().run_measure().involved_mpps}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table4",
        title="Mixed I/O flows: CPU-involved Mpps, CEIO ablation",
        paper_claim=("CEIO 1.71-1.94x over baseline across ratios; "
                     "optimisations lift the unoptimised variant at every "
                     "ratio (1.53->1.94x at 3:1, 1.16->1.71x at 1:3)"),
    )
    result.headers = ["ratio", "baseline_mpps", "ceio_noopt_mpps",
                      "noopt_x", "ceio_mpps", "ceio_x"]
    data: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
    for involved, bypass in RATIOS:
        base = results[f"table4/baseline.{involved}-{bypass}"]["mpps"]
        noopt = results[f"table4/ceio-noopt.{involved}-{bypass}"]["mpps"]
        full = results[f"table4/ceio.{involved}-{bypass}"]["mpps"]
        data[(involved, bypass)] = (base, noopt, full)
        result.rows.append([f"{involved//2}:{bypass//2}", base, noopt,
                            noopt / base, full, full / base])

    for (involved, bypass), (base, noopt, full) in data.items():
        ratio = f"{involved//2}:{bypass//2}"
        if involved >= bypass:
            result.check_ratio(f"{ratio}: full CEIO speedup over baseline",
                               full, base, 1.2)
        result.check(f"{ratio}: optimisations add throughput",
                     full >= noopt * 0.98,
                     f"full {full:.1f} vs no-opt {noopt:.1f} Mpps")
    result.notes.append(
        "divergence: at 1:3 our baseline's two RPC flows end up "
        "network-share-limited below their miss-free CPU capacity (the "
        "simulated DCTCP fabric throttles them alongside the bulk flows), "
        "so the paper's 1.71x baseline gap does not reproduce at that "
        "ratio; the optimisation ordering (full CEIO > unoptimised) does")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
