"""CLI: run reproduction experiments and print the paper-style output.

Usage::

    python -m repro.experiments fig09 table2
    python -m repro.experiments all --full
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce CEIO's figures and tables.")
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids or 'all': {sorted(EXPERIMENTS)}")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps (slower) instead of quick mode")
    args = parser.parse_args(argv)

    ids = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    failed = 0
    for exp_id in ids:
        start = time.time()
        result = run_experiment(exp_id, quick=not args.full)
        print(result.render())
        print(f"(elapsed {time.time() - start:.1f}s)\n")
        if not result.all_passed:
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
