"""CLI: run reproduction experiments and print the paper-style output.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig09 table2
    python -m repro.experiments all --full --jobs 8
    python -m repro.experiments fig09 --seed 42 --rerun

Sweeps execute through :mod:`repro.runner`: independent simulation points
run across a worker pool (``--jobs``), completed points are served from
the content-addressed cache under ``.repro_cache/`` (disable with
``--no-cache``, force re-execution with ``--rerun``), and progress/ETA
lines go to stderr while the result tables stay on stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS
from ..runner import RunnerOptions, run_sweeps


def _expand_ids(requested, parser: argparse.ArgumentParser):
    """Validate and dedupe experiment ids (order-preserving) up front, so
    an unknown id fails before any simulation starts."""
    ids = []
    seen = set()
    for exp_id in requested:
        expanded = list(EXPERIMENTS) if exp_id == "all" else [exp_id]
        for eid in expanded:
            if eid not in EXPERIMENTS:
                parser.error(f"unknown experiment {eid!r}; choose from "
                             f"{sorted(EXPERIMENTS)} (or 'all')")
            if eid not in seen:
                seen.add(eid)
                ids.append(eid)
    return ids


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce CEIO's figures and tables.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids or 'all' (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="print experiment ids + descriptions and exit")
    parser.add_argument("--full", action="store_true",
                        help="full sweeps (slower) instead of quick mode")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="root seed: each simulation point draws its own "
                             "RngRegistry substream from it (default: the "
                             "calibrated per-experiment seeds)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--rerun", action="store_true",
                        help="ignore cached results (still refresh them)")
    parser.add_argument("--cache-dir", default=".repro_cache",
                        help="result cache location (default .repro_cache)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-point timeout in seconds (pool mode)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retries per failed/crashed/timed-out point "
                             "(default 1)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    parser.add_argument("--strict-audit", action="store_true",
                        help="fail (exit 1) if any point reports a "
                             "cross-layer conservation violation "
                             "(repro.audit); cached entries without an "
                             "audit summary are re-executed")
    parser.add_argument("--profile", action="store_true",
                        help="wrap every executed point in cProfile and "
                             "dump <point>.prof next to the runlog "
                             "(runs serially; skips cache reads)")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, spec in EXPERIMENTS.items():
            kind = "sweep" if spec.points is not None else "whole"
            print(f"{eid:<{width}}  [{kind}]  {spec.description}")
        return 0
    if not args.experiments:
        parser.error("no experiments given (try --list or 'all')")

    ids = _expand_ids(args.experiments, parser)
    profile_dir = None
    if args.profile:
        # .prof files land next to the runlog (<cache_dir>/profiles/).
        profile_dir = f"{args.cache_dir}/profiles"
        print(f"profiling: one .prof per point under {profile_dir}/ "
              "(serial execution, cache reads skipped)", file=sys.stderr)
    options = RunnerOptions(
        jobs=args.jobs, use_cache=not args.no_cache, rerun=args.rerun,
        cache_dir=args.cache_dir, timeout=args.timeout,
        retries=args.retries, quiet=args.quiet, profile_dir=profile_dir,
        strict_audit=args.strict_audit)

    start = time.time()
    outcomes, progress = run_sweeps(ids, quick=not args.full,
                                    seed=args.seed, options=options)
    failed = 0
    for outcome in outcomes:
        if outcome.error:
            print(f"== {outcome.exp_id}: SWEEP FAILED ==\n{outcome.error}\n",
                  file=sys.stderr)
            failed += 1
            continue
        print(outcome.result.render())
        print()
        if not outcome.result.all_passed:
            failed += 1
    summary = progress.summary()
    print(f"{summary}; total wall-clock {time.time() - start:.1f}s",
          file=sys.stderr)
    if args.strict_audit and progress.audit_violations:
        worst = sorted(progress.audit_failed_points.items())
        print(f"strict audit: {progress.audit_violations} conservation "
              f"violation(s) across {len(worst)} point(s): "
              + ", ".join(f"{pid} ({n})" for pid, n in worst[:5]),
              file=sys.stderr)
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
