"""Figure 12: aggregate throughput with thousands of UD flows under churn.

512 B echo in RDMA UD mode: 16 queue pairs are active at a time and the
active set is reshuffled every time slot. Paper: CEIO sustains throughput
when the slot is >= 1 ms; at 100-500 µs slots throughput/fast-path use
degrades beyond ~1K flows because the round-robin reactivation (a bounded
ARM-rate scan of the steering table) cannot keep up with the churn.
"""

from __future__ import annotations

from ..sim.units import US
from ..workloads import ChurnConfig, UdChurnScenario
from .report import ExperimentResult

__all__ = ["run"]

FLOWS_QUICK = [32, 1024]
FLOWS_FULL = [16, 128, 512, 1024, 2048]
SLOTS_QUICK = [100 * US, 1000 * US]
SLOTS_FULL = [100 * US, 500 * US, 1000 * US]


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="Aggregate throughput vs number of UD flows (512B echo)",
        paper_claim=("stable throughput at slow churn (>=1ms slots); "
                     "beyond ~1K flows with 100-500µs slots the active-flow "
                     "strategy lags and traffic shifts to the slow path"),
    )
    result.headers = ["flows", "slot_us", "mpps", "fast_fraction", "miss_%"]
    flows = FLOWS_QUICK if quick else FLOWS_FULL
    slots = SLOTS_QUICK if quick else SLOTS_FULL
    data = {}
    for n in flows:
        for slot in slots:
            r = UdChurnScenario(ChurnConfig(total_flows=n, time_slot=slot,
                                            seed=5)).build().run()
            data[(n, slot)] = r
            result.rows.append([n, slot / US, r.aggregate_mpps,
                                r.fast_fraction, r.llc_miss_rate * 100])

    few, many = flows[0], flows[-1]
    fast_slot, slow_slot = slots[0], slots[-1]
    result.check(
        "few flows stay (almost) entirely on the fast path",
        data[(few, fast_slot)].fast_fraction > 0.9,
        f"fast fraction {data[(few, fast_slot)].fast_fraction:.2f}")
    result.check(
        "fast churn + many flows forces traffic onto the slow path",
        data[(many, fast_slot)].fast_fraction < 0.5,
        f"fast fraction {data[(many, fast_slot)].fast_fraction:.2f}")
    result.check(
        "slow churn recovers fast-path utilisation at the same flow count",
        data[(many, slow_slot)].fast_fraction
        > data[(many, fast_slot)].fast_fraction + 0.1,
        f"{data[(many, slow_slot)].fast_fraction:.2f} vs "
        f"{data[(many, fast_slot)].fast_fraction:.2f}")
    result.check(
        "aggregate throughput never collapses (elastic buffering holds)",
        data[(many, fast_slot)].aggregate_mpps
        > 0.5 * data[(few, fast_slot)].aggregate_mpps,
    )
    return result
