"""Figure 12: aggregate throughput with thousands of UD flows under churn.

512 B echo in RDMA UD mode: 16 queue pairs are active at a time and the
active set is reshuffled every time slot. Paper: CEIO sustains throughput
when the slot is >= 1 ms; at 100-500 µs slots throughput/fast-path use
degrades beyond ~1K flows because the round-robin reactivation (a bounded
ARM-rate scan of the steering table) cannot keep up with the churn.

Sweep decomposition: one point per (flow count, slot length).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import ChurnConfig, UdChurnScenario
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

FLOWS_QUICK = [32, 1024]
FLOWS_FULL = [16, 128, 512, 1024, 2048]
SLOTS_QUICK = [100 * US, 1000 * US]
SLOTS_FULL = [100 * US, 500 * US, 1000 * US]
DEFAULT_SEED = 5
_FN = "repro.experiments.fig12:run_point"


def _axes(quick: bool):
    return ((FLOWS_QUICK if quick else FLOWS_FULL),
            (SLOTS_QUICK if quick else SLOTS_FULL))


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    flows, slots = _axes(quick)
    pts = []
    for n in flows:
        for slot in slots:
            params = {"flows": n, "slot_us": slot / US}
            pts.append(make_point("fig12", _FN, params, seed, DEFAULT_SEED,
                                  label=f"f{n}.s{slot / US:g}us"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    r = UdChurnScenario(ChurnConfig(total_flows=params["flows"],
                                    time_slot=params["slot_us"] * US,
                                    seed=seed)).build().run()
    return {"mpps": r.aggregate_mpps, "fast_fraction": r.fast_fraction,
            "miss": r.llc_miss_rate}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="Aggregate throughput vs number of UD flows (512B echo)",
        paper_claim=("stable throughput at slow churn (>=1ms slots); "
                     "beyond ~1K flows with 100-500µs slots the active-flow "
                     "strategy lags and traffic shifts to the slow path"),
    )
    result.headers = ["flows", "slot_us", "mpps", "fast_fraction", "miss_%"]
    flows, slots = _axes(quick)
    data = {}
    for n in flows:
        for slot in slots:
            r = results[f"fig12/f{n}.s{slot / US:g}us"]
            data[(n, slot)] = r
            result.rows.append([n, slot / US, r["mpps"],
                                r["fast_fraction"], r["miss"] * 100])

    few, many = flows[0], flows[-1]
    fast_slot, slow_slot = slots[0], slots[-1]
    result.check(
        "few flows stay (almost) entirely on the fast path",
        data[(few, fast_slot)]["fast_fraction"] > 0.9,
        f"fast fraction {data[(few, fast_slot)]['fast_fraction']:.2f}")
    result.check(
        "fast churn + many flows forces traffic onto the slow path",
        data[(many, fast_slot)]["fast_fraction"] < 0.5,
        f"fast fraction {data[(many, fast_slot)]['fast_fraction']:.2f}")
    result.check(
        "slow churn recovers fast-path utilisation at the same flow count",
        data[(many, slow_slot)]["fast_fraction"]
        > data[(many, fast_slot)]["fast_fraction"] + 0.1,
        f"{data[(many, slow_slot)]['fast_fraction']:.2f} vs "
        f"{data[(many, fast_slot)]['fast_fraction']:.2f}")
    result.check(
        "aggregate throughput never collapses (elastic buffering holds)",
        data[(many, fast_slot)]["mpps"]
        > 0.5 * data[(few, fast_slot)]["mpps"],
    )
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
