"""Figure 9: throughput and LLC miss rate vs packet size, static load.

Three panels — eRPC(DPDK), eRPC(RDMA), LineFS(RDMA) — each sweeping the
packet size from 128 B to 1024 B for Baseline / HostCC / ShRing / CEIO.

Paper's observations reproduced as shape checks:
- CEIO cuts the LLC miss rate from ~88% to ~1% and wins throughput;
- proactive CEIO beats reactive HostCC (up to 1.5x);
- ShRing's miss rate is comparable to CEIO's but its throughput is lower;
- gains shrink as packets grow (large packets amortise per-packet cost).

The sweep is exposed as independent :class:`~repro.runner.sweep.Point`\\ s
(``points()`` / ``run_point()`` / ``collect()``) so ``repro.runner`` can
execute it across a worker pool; ``run()`` is the serial composition of
the three and produces bit-identical results for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

ARCHS = ["baseline", "hostcc", "shring", "ceio"]
SIZES_QUICK = [144, 512, 1024]
SIZES_FULL = [128, 256, 512, 1024]
PANELS = [("erpc-dpdk", "dpdk", False),
          ("erpc-rdma", "rdma", False),
          ("linefs", "rdma", True)]
DEFAULT_SEED = 7
_FN = "repro.experiments.fig09:run_point"


def _panels(quick: bool) -> List[Tuple[str, str, bool]]:
    return PANELS[:1] + PANELS[2:] if quick else PANELS  # dpdk + linefs


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    pts = []
    for panel, transport, bypass in _panels(quick):
        for arch in ARCHS:
            for size in sizes:
                params = {"panel": panel, "transport": transport,
                          "bypass": bypass, "arch": arch, "size": size,
                          "quick": quick}
                pts.append(make_point(
                    "fig09", _FN, params, seed, DEFAULT_SEED,
                    label=f"{panel}.{arch}.{size}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    quick = params["quick"]
    warmup = 400 * US if quick else 800 * US
    duration = (500 * US) if quick else (1000 * US)
    if params["bypass"]:
        config = ScenarioConfig(
            arch=params["arch"], n_involved=0, n_bypass=8,
            bypass_payload=params["size"], chunk_packets=32,
            transport="rdma", warmup=warmup, duration=duration, seed=seed)
    else:
        config = ScenarioConfig(
            arch=params["arch"], n_involved=8, payload=params["size"],
            transport=params["transport"], warmup=warmup,
            duration=duration, seed=seed)
    m = Scenario(config).build().run_measure()
    rate = m.bypass_mpps if params["bypass"] else m.involved_mpps
    return {"mpps": rate, "miss": m.llc_miss_rate}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig09",
        title="Throughput & LLC miss rate vs packet size (static)",
        paper_claim=("CEIO reduces miss rate 88%->1%, 1.3-2.1x throughput "
                     "vs baseline, up to 1.5x vs HostCC; ShRing miss rate "
                     "similar to CEIO but throughput lower"),
    )
    result.headers = ["panel", "arch", "payload_B", "mpps", "miss_%"]
    sizes = SIZES_QUICK if quick else SIZES_FULL

    def cell(panel: str, arch: str, size: int) -> Dict[str, float]:
        return results[f"fig09/{panel}.{arch}.{size}"]

    for panel, _transport, bypass in _panels(quick):
        mpps: Dict[str, Dict[int, float]] = {}
        miss: Dict[str, Dict[int, float]] = {}
        for arch in ARCHS:
            mpps[arch] = {}
            miss[arch] = {}
            for size in sizes:
                value = cell(panel, arch, size)
                mpps[arch][size] = value["mpps"]
                miss[arch][size] = value["miss"]
                result.rows.append([panel, arch, size, value["mpps"],
                                    value["miss"] * 100.0])
        small = sizes[0]
        if not bypass:
            result.check_order(
                f"{panel}: throughput order at {small}B "
                "(ceio >= shring >= hostcc >= baseline)",
                {a: mpps[a][small] for a in ARCHS},
                ["ceio", "shring", "hostcc", "baseline"])
            result.check_ratio(
                f"{panel}: ceio/baseline speedup at {small}B in paper band",
                mpps["ceio"][small], mpps["baseline"][small], 1.3, 4.0)
            result.check(
                f"{panel}: baseline misses heavily at {small}B",
                miss["baseline"][small] > 0.5,
                f"baseline miss {miss['baseline'][small]*100:.0f}%")
            result.check(
                f"{panel}: ceio miss rate ~ eliminated",
                miss["ceio"][small] < 0.05,
                f"ceio miss {miss['ceio'][small]*100:.2f}%")
            result.check(
                f"{panel}: gains shrink at large packets",
                (mpps["ceio"][sizes[-1]] / max(1e-9, mpps["baseline"][sizes[-1]]))
                < (mpps["ceio"][small] / max(1e-9, mpps["baseline"][small])),
            )
        else:
            result.check(
                f"{panel}: ceio >= baseline (within noise)",
                mpps["ceio"][sizes[-1]]
                >= 0.97 * mpps["baseline"][sizes[-1]],
                f"ceio {mpps['ceio'][sizes[-1]]:.2f} vs baseline "
                f"{mpps['baseline'][sizes[-1]]:.2f} Mpps — both line-rate "
                "limited at large chunks, as §6.3 predicts")
            result.check(
                f"{panel}: ceio miss rate low",
                miss["ceio"][sizes[-1]] < 0.15,
                f"{miss['ceio'][sizes[-1]]*100:.1f}%")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
