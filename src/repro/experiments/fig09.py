"""Figure 9: throughput and LLC miss rate vs packet size, static load.

Three panels — eRPC(DPDK), eRPC(RDMA), LineFS(RDMA) — each sweeping the
packet size from 128 B to 1024 B for Baseline / HostCC / ShRing / CEIO.

Paper's observations reproduced as shape checks:
- CEIO cuts the LLC miss rate from ~88% to ~1% and wins throughput;
- proactive CEIO beats reactive HostCC (up to 1.5x);
- ShRing's miss rate is comparable to CEIO's but its throughput is lower;
- gains shrink as packets grow (large packets amortise per-packet cost).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run"]

ARCHS = ["baseline", "hostcc", "shring", "ceio"]
SIZES_QUICK = [144, 512, 1024]
SIZES_FULL = [128, 256, 512, 1024]


def _panel(result: ExperimentResult, panel: str, transport: str,
           bypass: bool, sizes: List[int], warmup: float, duration: float,
           seed: int) -> Dict[str, Dict[int, float]]:
    mpps: Dict[str, Dict[int, float]] = {}
    miss: Dict[str, Dict[int, float]] = {}
    for arch in ARCHS:
        mpps[arch] = {}
        miss[arch] = {}
        for size in sizes:
            if bypass:
                config = ScenarioConfig(
                    arch=arch, n_involved=0, n_bypass=8,
                    bypass_payload=size, chunk_packets=32,
                    transport="rdma", warmup=warmup, duration=duration,
                    seed=seed)
            else:
                config = ScenarioConfig(
                    arch=arch, n_involved=8, payload=size,
                    transport=transport, warmup=warmup, duration=duration,
                    seed=seed)
            m = Scenario(config).build().run_measure()
            rate = m.bypass_mpps if bypass else m.involved_mpps
            mpps[arch][size] = rate
            miss[arch][size] = m.llc_miss_rate
            result.rows.append([panel, arch, size, rate,
                                m.llc_miss_rate * 100.0])
    return mpps, miss


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig09",
        title="Throughput & LLC miss rate vs packet size (static)",
        paper_claim=("CEIO reduces miss rate 88%->1%, 1.3-2.1x throughput "
                     "vs baseline, up to 1.5x vs HostCC; ShRing miss rate "
                     "similar to CEIO but throughput lower"),
    )
    result.headers = ["panel", "arch", "payload_B", "mpps", "miss_%"]
    sizes = SIZES_QUICK if quick else SIZES_FULL
    warmup = 400 * US if quick else 800 * US
    duration = (500 * US) if quick else (1000 * US)

    panels = [("erpc-dpdk", "dpdk", False),
              ("erpc-rdma", "rdma", False),
              ("linefs", "rdma", True)]
    if quick:
        panels = panels[:1] + panels[2:]  # dpdk + linefs panels

    for panel, transport, bypass in panels:
        mpps, miss = _panel(result, panel, transport, bypass, sizes,
                            warmup, duration, seed=7)
        small = sizes[0]
        if not bypass:
            result.check_order(
                f"{panel}: throughput order at {small}B "
                "(ceio >= shring >= hostcc >= baseline)",
                {a: mpps[a][small] for a in ARCHS},
                ["ceio", "shring", "hostcc", "baseline"])
            result.check_ratio(
                f"{panel}: ceio/baseline speedup at {small}B in paper band",
                mpps["ceio"][small], mpps["baseline"][small], 1.3, 4.0)
            result.check(
                f"{panel}: baseline misses heavily at {small}B",
                miss["baseline"][small] > 0.5,
                f"baseline miss {miss['baseline'][small]*100:.0f}%")
            result.check(
                f"{panel}: ceio miss rate ~ eliminated",
                miss["ceio"][small] < 0.05,
                f"ceio miss {miss['ceio'][small]*100:.2f}%")
            result.check(
                f"{panel}: gains shrink at large packets",
                (mpps["ceio"][sizes[-1]] / max(1e-9, mpps["baseline"][sizes[-1]]))
                < (mpps["ceio"][small] / max(1e-9, mpps["baseline"][small])),
            )
        else:
            result.check(
                f"{panel}: ceio >= baseline (within noise)",
                mpps["ceio"][sizes[-1]]
                >= 0.97 * mpps["baseline"][sizes[-1]],
                f"ceio {mpps['ceio'][sizes[-1]]:.2f} vs baseline "
                f"{mpps['baseline'][sizes[-1]]:.2f} Mpps — both line-rate "
                "limited at large chunks, as §6.3 predicts")
            result.check(
                f"{panel}: ceio miss rate low",
                miss["ceio"][sizes[-1]] < 0.15,
                f"{miss['ceio'][sizes[-1]]*100:.1f}%")
    return result
