"""Table 2: P99 / P99.9 latency (µs) under the 512 B echo workload.

Four architectures x three data paths (eRPC-DPDK, eRPC-RDMA, LineFS).
Paper: CEIO cuts P99.9 by 2.39-4.73x vs the baseline and beats HostCC and
ShRing on the tail; ShRing has a good median but loss-recovery episodes in
its tail; the baseline's tail is dominated by LLC-thrash queueing.

Sweep decomposition: one point per (datapath, architecture).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

ARCHS = ["baseline", "hostcc", "shring", "ceio"]
DEFAULT_SEED = 13
_FN = "repro.experiments.table2:run_point"


def _datapaths(quick: bool) -> List[str]:
    return (["erpc-dpdk", "linefs"] if quick
            else ["erpc-dpdk", "erpc-rdma", "linefs"])


def _datapath_config(datapath: str, arch: str, quick: bool,
                     seed: int) -> ScenarioConfig:
    """Closed-loop saturating clients — the paper's dperf methodology.
    (The baseline's LLC thrash is bistable: a fixed offered load below its
    miss-free capacity never builds the queue that triggers it, so open-
    loop probing measures nothing. Saturation is what Table 2 reports.)
    """
    warmup = 400 * US if quick else 800 * US
    duration = (500 * US) if quick else (1000 * US)
    if datapath == "linefs":
        return ScenarioConfig(arch=arch, n_involved=0, n_bypass=8,
                              bypass_payload=512, chunk_packets=4,
                              transport="rdma", warmup=warmup,
                              duration=duration, seed=seed)
    transport = "dpdk" if datapath == "erpc-dpdk" else "rdma"
    # 400 extra cycles per request: at 512 B the full echo stack keeps the
    # cores just below the link rate (the queueing regime Table 2 reports;
    # without it 8 cores outrun a 200 Gbps link at this packet size and
    # every architecture measures identical, queue-free latency).
    return ScenarioConfig(arch=arch, n_involved=8, payload=512,
                          transport=transport, warmup=warmup,
                          duration=duration, seed=seed,
                          app_extra_cycles=400.0)


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    pts = []
    for datapath in _datapaths(quick):
        for arch in ARCHS:
            params = {"datapath": datapath, "arch": arch, "quick": quick}
            pts.append(make_point("table2", _FN, params, seed, DEFAULT_SEED,
                                  label=f"{datapath}.{arch}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    config = _datapath_config(params["datapath"], params["arch"],
                              params["quick"], seed)
    m = Scenario(config).build().run_measure()
    return {"mpps": m.total_mpps, "p50": m.p50_us, "p99": m.p99_us,
            "p999": m.p999_us}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table2",
        title="P99/P99.9 latency (µs), 512B echo",
        paper_claim=("CEIO reduces P99.9 by 2.39-4.73x vs baseline and has "
                     "the lowest tail of all four architectures"),
    )
    result.headers = ["datapath", "arch", "mpps", "p50_us", "p99_us",
                      "p999_us"]
    datapaths = _datapaths(quick)
    p999: Dict[Tuple[str, str], float] = {}
    mpps: Dict[Tuple[str, str], float] = {}
    for datapath in datapaths:
        for arch in ARCHS:
            m = results[f"table2/{datapath}.{arch}"]
            p999[(datapath, arch)] = m["p999"]
            mpps[(datapath, arch)] = m["mpps"]
            result.rows.append([datapath, arch, m["mpps"], m["p50"],
                                m["p99"], m["p999"]])

    for datapath in datapaths:
        # Latency is only comparable at comparable delivered load: an
        # architecture that throttled itself to a fraction of CEIO's
        # throughput (HostCC's failure mode) trivially has short queues.
        comparable = [a for a in ARCHS
                      if mpps[(datapath, a)]
                      >= 0.7 * mpps[(datapath, "ceio")]]
        excluded = sorted(set(ARCHS) - set(comparable))
        if excluded:
            result.notes.append(
                f"{datapath}: {excluded} excluded from the tail comparison "
                f"(delivered <70% of CEIO's throughput)")
        rate_control_rivals = [a for a in comparable
                               if a in ("baseline", "hostcc")]
        result.check(
            f"{datapath}: CEIO beats the rate-control rivals' P99.9 "
            "at comparable load",
            all(p999[(datapath, "ceio")] <= p999[(datapath, a)] + 1e-9
                for a in rate_control_rivals),
            " ".join(f"{a}:{p999[(datapath, a)]:.0f}"
                     for a in comparable + ["ceio"]))
        # At closed-loop saturation a design can trade queue depth for
        # throughput; CEIO must Pareto-dominate the baseline — much better
        # tail at comparable throughput, or much higher throughput.
        tail_gain = (p999[(datapath, "baseline")]
                     / max(1e-9, p999[(datapath, "ceio")]))
        tput_gain = (mpps[(datapath, "ceio")]
                     / max(1e-9, mpps[(datapath, "baseline")]))
        result.check(
            f"{datapath}: CEIO Pareto-dominates the baseline "
            "(>=2x tail or >=2x throughput, never worse in either)",
            (tail_gain >= 2.0 or tput_gain >= 2.0)
            and tail_gain >= 0.95 and tput_gain >= 0.95,
            f"tail x{tail_gain:.2f}, throughput x{tput_gain:.2f}")
    result.notes.append(
        "divergence: under *static* saturation our ShRing (with its "
        "proportional ECN guard) posts very low tails; the paper's "
        "ShRing-vs-CEIO tail gap comes from CCA-trigger instability that "
        "shows under dynamic conditions — see fig10 and the P99.9 spikes "
        "in the 144B smoke runs")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
