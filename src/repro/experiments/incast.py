"""Incast: fan-in degree x architecture on the star topology.

Sweeps the ``incast-N`` scenario family (``repro.scenario``): N client
hosts each drive one closed-loop KV flow into a single receiver behind
one ToR, for N in the fan-in axis, across the I/O architectures. This
is the RDCA-motivated stress the two-server testbed cannot express —
receive pressure grows with the *number of concurrent senders*, not
per-flow load, so architectures that cap or recycle receive buffers
(CEIO, ShRing) separate sharply from the DDIO baseline as N grows.

The sweep exposes a crossover the two-server testbed cannot show. At
narrow fan-in each flow's arrival rate exceeds a core's miss-laden
service rate, rings back up, and the baseline's DDIO partition
thrashes (the ~100% miss regime) while CEIO's bounded buffering keeps
serving from the LLC. At wide fan-in the shared ToR egress caps
per-flow demand below even the baseline's hit-served capacity, so every
architecture converges to fabric line rate — with CEIO the receiver
cache is *never* the bottleneck, at any fan-in.

Shape checks:
- CEIO beats the baseline >= 1.3x at the narrowest fan-in (thrash
  regime) and stays >= baseline (within noise) at every fan-in;
- the baseline misses heavily at the narrowest fan-in; CEIO's miss
  rate stays low at every fan-in;
- CEIO's throughput grows with fan-in up to fabric line rate;
- every point's conservation audit is clean (zero violations).

Every point carries its scenario's canonical JSON in ``Point.scenario``,
so cached incast results are keyed by the full declarative spec; results
are bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..runner.sweep import Point, make_point, run_points_serial
from ..scenario import canonical, incast_template
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

ARCHS = ["baseline", "hostcc", "shring", "ceio"]
ARCHS_QUICK = ["baseline", "ceio"]
FAN_INS_QUICK = [8, 32]
FAN_INS_FULL = [4, 8, 16, 32]
DEFAULT_SEED = 7
_FN = "repro.experiments.incast:run_point"


def _scenario(fan_in: int, arch: str, seed: int,
              quick: bool) -> Dict[str, Any]:
    spec = incast_template(fan_in)
    spec["seed"] = seed
    spec["hosts"]["*"]["arch"] = arch
    if quick:
        spec["measure"] = {"warmup_us": 200.0, "duration_us": 300.0}
    return spec


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    archs = ARCHS_QUICK if quick else ARCHS
    fan_ins = FAN_INS_QUICK if quick else FAN_INS_FULL
    pts = []
    for arch in archs:
        for fan_in in fan_ins:
            params = {"arch": arch, "fan_in": fan_in, "quick": quick}
            point = make_point("incast", _FN, params, seed, DEFAULT_SEED,
                               label=f"{arch}.{fan_in}")
            pts.append(Point(
                exp_id=point.exp_id, fn=point.fn, params=point.params,
                seed=point.seed, label=point.label,
                scenario=canonical(_scenario(fan_in, arch, point.seed,
                                             quick))))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    # Imported here so the registry import stays light and the worker is
    # resolvable in any pool process.
    from ..workloads.topo_scenario import compile_scenario
    spec = _scenario(params["fan_in"], params["arch"], seed,
                     params["quick"])
    scenario = compile_scenario(spec)
    measurement = scenario.run_measure()["s0"]
    audit = measurement.audit or {}
    return {
        "mpps": measurement.involved_mpps,
        "miss": measurement.llc_miss_rate,
        "p99_us": measurement.p99_us,
        "audit_ok": bool(audit.get("ok", False)),
        "audit_violations": len(audit.get("violations", [])),
    }


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    archs = ARCHS_QUICK if quick else ARCHS
    fan_ins = FAN_INS_QUICK if quick else FAN_INS_FULL
    result = ExperimentResult(
        exp_id="incast",
        title="Incast fan-in sweep on the star topology (repro.topo)",
        paper_claim=("Receive-side cache pressure grows with fan-in; "
                     "CEIO's bounded buffering holds throughput and a "
                     "low miss rate where the DDIO baseline degrades"),
    )
    result.headers = ["arch", "fan_in", "mpps", "miss_%", "p99_us",
                      "audit_ok"]
    mpps: Dict[str, Dict[int, float]] = {a: {} for a in archs}
    miss: Dict[str, Dict[int, float]] = {a: {} for a in archs}
    audits_ok = True
    for arch in archs:
        for fan_in in fan_ins:
            value = results[f"incast/{arch}.{fan_in}"]
            mpps[arch][fan_in] = value["mpps"]
            miss[arch][fan_in] = value["miss"]
            audits_ok = audits_ok and value["audit_ok"]
            result.rows.append([arch, fan_in, value["mpps"],
                                value["miss"] * 100.0, value["p99_us"],
                                value["audit_ok"]])
    narrow, wide = fan_ins[0], fan_ins[-1]
    result.check("all points pass conservation audit", audits_ok)
    result.check_ratio(
        f"ceio/baseline speedup at fan-in {narrow} (thrash regime)",
        mpps["ceio"][narrow], mpps["baseline"][narrow], 1.3, 10.0)
    result.check(
        f"baseline misses heavily at fan-in {narrow}",
        miss["baseline"][narrow] > 0.5,
        f"baseline miss {miss['baseline'][narrow] * 100:.0f}%")
    for fan_in in fan_ins:
        result.check(
            f"ceio >= baseline at fan-in {fan_in} (within noise)",
            mpps["ceio"][fan_in] >= 0.97 * mpps["baseline"][fan_in],
            f"ceio {mpps['ceio'][fan_in]:.2f} vs baseline "
            f"{mpps['baseline'][fan_in]:.2f} Mpps")
        result.check(
            f"ceio miss rate stays low at fan-in {fan_in}",
            miss["ceio"][fan_in] < 0.1,
            f"{miss['ceio'][fan_in] * 100:.2f}%")
    result.check(
        f"ceio throughput grows with fan-in ({narrow} -> {wide})",
        mpps["ceio"][wide] > mpps["ceio"][narrow],
        f"{mpps['ceio'][narrow]:.1f} -> {mpps['ceio'][wide]:.1f} Mpps")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
