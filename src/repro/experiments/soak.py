"""Randomized invariant soak: sampled scenarios gated on conservation.

Where the figure/table experiments pin *performance* numbers, the soak
harness pins *correctness*: it samples scenario x architecture x fault
plan combinations from a seeded stream, runs each one with the
cross-layer conservation ledger armed (``repro.audit``), and fails if any
sampled point reports a balance violation — packets, bytes, descriptors,
credits, or cache lines leaking between layers.

Determinism contract: the entire sample — architectures, flow counts,
fault plans, per-point testbed seeds — is a pure function of the root
seed, drawn from one named ``RngRegistry`` stream *in the parent* before
any point runs. Points are therefore identical for any ``--jobs`` value,
each point's fault plan rides in its params (and its canonical JSON in
the cache key), and a soak that passed once passes forever at that seed.

Run it like any experiment, ideally strictly gated::

    python -m repro.experiments soak --strict-audit
    REPRO_SIM_DEBUG=1 python -m repro.experiments soak --strict-audit
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..faults import FaultPlan, FaultSpec
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.rng import RngRegistry
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

DEFAULT_SEED = 407
_FN = "repro.experiments.soak:run_point"

ARCHES = ["ceio", "baseline", "shring", "hostcc", "mpq"]
N_QUICK = 50
N_FULL = 120

#: Open-loop demand points appended after the closed-loop sample, drawn
#: from their own ``soak.demand`` stream so the historical ``soak.sampler``
#: draws (and every cached closed-loop point) are byte-identical.
N_DEMAND_QUICK = 10
N_DEMAND_FULL = 24
_DEMAND_PROFILES = ["steady", "diurnal", "flash_crowd"]
_DEMAND_ARRIVALS = ["poisson", "sessions"]

#: Every point simulates warm-up plus one measured window; faults open
#: inside that span (and may still be open at end-of-run — conservation
#: must hold either way).
WARMUP = 150 * US
DURATION = 250 * US

#: (site, kind) -> magnitude range to sample from. Semantics per kind
#: follow :class:`repro.faults.FaultSpec` (probability, residual
#: bandwidth/DDIO fraction, extra ns, execution-time multiplier; the
#: magnitude is ignored for ``dma_stall`` / ``crash_restart``).
MAGNITUDES: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("net.link", "loss"): (0.01, 0.10),
    ("net.link", "burst_loss"): (0.3, 0.9),
    ("net.link", "corrupt"): (0.005, 0.05),
    ("hw.pcie", "stall"): (0.0, 0.5),
    ("hw.pcie", "latency"): (200.0, 2000.0),
    ("hw.nic", "dma_stall"): (1.0, 1.0),
    ("hw.nic", "descriptor_drop"): (0.25, 1.0),
    ("hw.cache", "ddio_reconfig"): (0.25, 0.75),
    ("hw.cpu", "slowdown"): (1.5, 4.0),
    ("apps", "crash_restart"): (1.0, 1.0),
}
_KINDS = sorted(MAGNITUDES)


def _sample_plan(rng, n_faults: int) -> FaultPlan:
    """Draw ``n_faults`` specs; at most one crash per plan (a second crash
    of an already-dead worker is not a meaningful scenario)."""
    specs: List[FaultSpec] = []
    crashed = False
    for _ in range(n_faults):
        site, kind = _KINDS[rng.randrange(len(_KINDS))]
        if kind == "crash_restart":
            if crashed:
                continue
            crashed = True
        lo, hi = MAGNITUDES[(site, kind)]
        specs.append(FaultSpec(
            site, kind,
            start=float(rng.randrange(50, 300)) * US,
            duration=float(rng.randrange(30, 90)) * US,
            magnitude=round(lo + (hi - lo) * rng.random(), 4)))
    return FaultPlan(specs)


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    rng = RngRegistry(DEFAULT_SEED if seed is None
                      else seed).stream("soak.sampler")
    count = N_QUICK if quick else N_FULL
    pts: List[Point] = []
    for index in range(count):
        arch = ARCHES[rng.randrange(len(ARCHES))]
        plan = _sample_plan(rng, rng.randrange(3))
        params = {
            "arch": arch,
            "n_involved": rng.randrange(2, 5),
            "n_bypass": rng.randrange(0, 3),
            "faults": plan.to_dicts(),
        }
        pt_seed = rng.randrange(1 << 31)
        pts.append(make_point(
            "soak", _FN, params, None, pt_seed,
            label=f"p{index:03d}.{arch}.f{len(plan)}",
            faults=plan.canonical()))
    pts.extend(_demand_points(quick, seed))
    return pts


def _demand_profile(rng, kind: str) -> Dict[str, Any]:
    base = round(2.0 + 14.0 * rng.random(), 2)
    if kind == "steady":
        return {"kind": "steady", "rate_mpps": base}
    if kind == "diurnal":
        return {"kind": "diurnal", "base_mpps": base,
                "amplitude": round(0.2 + 0.6 * rng.random(), 2),
                "period_us": float(rng.randrange(60, 160)),
                "phase_us": float(rng.randrange(0, 50))}
    return {"kind": "flash_crowd", "base_mpps": base,
            "peak_mpps": round(base * (2.0 + 2.0 * rng.random()), 2),
            "start_us": float(rng.randrange(120, 200)),
            "ramp_us": 25.0, "hold_us": 75.0, "decay_us": 25.0}


def _demand_points(quick: bool, seed: Optional[int]) -> List[Point]:
    """Open-loop invariant points: demand-driven scenarios where the
    admission account must reconcile (offered == delivered + shed +
    dropped) even when guardrails actively shed mid-run."""
    rng = RngRegistry(DEFAULT_SEED if seed is None
                      else seed).stream("soak.demand")
    count = N_DEMAND_QUICK if quick else N_DEMAND_FULL
    pts: List[Point] = []
    for index in range(count):
        if index == 0:
            # Every sample exercises the guarded path at least once:
            # admission reconciliation (offered == delivered + shed +
            # dropped) is the invariant this family exists to soak.
            arch, guarded = "ceio", True
        else:
            arch = ARCHES[rng.randrange(len(ARCHES))]
            guarded = arch == "ceio" and rng.random() < 0.5
        kind = _DEMAND_PROFILES[rng.randrange(len(_DEMAND_PROFILES))]
        arrivals = _DEMAND_ARRIVALS[rng.randrange(len(_DEMAND_ARRIVALS))]
        params = {
            "mode": "demand",
            "arch": arch,
            "flows": rng.randrange(2, 5),
            "profile": _demand_profile(rng, kind),
            "arrivals": arrivals,
            "guarded": guarded,
        }
        pt_seed = rng.randrange(1 << 31)
        pts.append(make_point(
            "soak", _FN, params, None, pt_seed,
            label=f"d{index:03d}.{arch}.{kind}"
                  + (".adm" if guarded else "")))
    return pts


def _run_demand_point(params: Mapping[str, Any],
                      seed: int) -> Dict[str, Any]:
    from ..workloads.topo_scenario import compile_scenario
    host: Dict[str, Any] = {"arch": params["arch"]}
    if params["guarded"]:
        host["ceio"] = {"admission_control": True,
                        "admission_ring_limit": 64}
    tenant: Dict[str, Any] = {"profile": "p0"}
    if params["arrivals"] == "sessions":
        tenant.update({"arrivals": "sessions", "mean_messages": 16.0,
                       "shape": 1.5, "intra_gap_us": 2.0})
    spec = {
        "version": 1,
        "name": "soak-demand",
        "seed": seed,
        "topology": {"kind": "star",
                     "params": {"n_clients": 4, "n_servers": 1}},
        "hosts": {"*": host},
        "tenants": [{"name": "kv", "workload": "kvstore", "host": "s0",
                     "flows": params["flows"], "payload": 144}],
        "demand": {
            "window_us": 50.0,
            "profiles": {"p0": dict(params["profile"])},
            "tenants": {"kv": tenant},
        },
        "measure": {"warmup_us": WARMUP / US,
                    "duration_us": DURATION / US},
    }
    measurement = compile_scenario(spec).run_measure()["s0"]
    audit = measurement.audit or {}
    return {
        "mpps": measurement.total_mpps,
        "dropped": measurement.dropped,
        "checked": audit.get("checked", 0),
        "violations": [v["message"] for v in audit.get("violations", ())],
    }


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    if params.get("mode") == "demand":
        return _run_demand_point(params, seed)
    plan = FaultPlan.from_dicts(params["faults"])
    config = ScenarioConfig(
        arch=params["arch"], scale=8,
        n_involved=params["n_involved"], n_bypass=params["n_bypass"],
        seed=seed, faults=plan if plan else None,
        warmup=WARMUP, duration=DURATION)
    measurement = Scenario(config).build().run_measure()
    audit = measurement.audit or {}
    return {
        "mpps": measurement.total_mpps,
        "dropped": measurement.dropped,
        "checked": audit.get("checked", 0),
        "violations": [v["message"] for v in audit.get("violations", ())],
    }


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="soak",
        title="Randomized invariant soak (conservation ledgers)",
        paper_claim=("every sampled scenario x architecture x fault-plan "
                     "combination conserves packets, bytes, descriptors, "
                     "credits, and cache residency across all layers"),
    )
    result.headers = ["arch", "points", "faulted", "checks", "violations",
                      "mean_mpps"]
    pts = points(quick, seed)
    per_arch: Dict[str, Dict[str, float]] = {}
    bad: List[str] = []
    for point in pts:
        value = results[point.point_id]
        arch = point.params["arch"]
        row = per_arch.setdefault(arch, {
            "points": 0, "faulted": 0, "checks": 0, "violations": 0,
            "mpps": 0.0})
        row["points"] += 1
        row["faulted"] += 1 if point.params.get("faults") else 0
        row["checks"] += value["checked"]
        row["violations"] += len(value["violations"])
        row["mpps"] += value["mpps"]
        for message in value["violations"]:
            bad.append(f"{point.point_id}: {message}")
    for arch in sorted(per_arch):
        row = per_arch[arch]
        result.rows.append([
            arch, row["points"], row["faulted"], row["checks"],
            row["violations"], row["mpps"] / max(1, row["points"])])

    total_violations = sum(r["violations"] for r in per_arch.values())
    total_checks = sum(r["checks"] for r in per_arch.values())
    faulted = sum(r["faulted"] for r in per_arch.values())
    result.check(
        f"all {len(pts)} sampled points balance",
        total_violations == 0,
        f"{total_checks:.0f} balance checks, "
        f"{total_violations:.0f} violations"
        + (f"; first: {bad[0]}" if bad else ""))
    result.check(
        "sample exercises faulted scenarios",
        faulted > 0,
        f"{faulted:.0f}/{len(pts)} points carry a fault plan")
    result.check(
        "auditing was armed on every point",
        all(results[p.point_id]["checked"] > 0 for p in pts),
        "each point reports a non-empty end-of-run reconciliation")
    demand = [p for p in pts if p.params.get("mode") == "demand"]
    guarded = sum(1 for p in demand if p.params["guarded"])
    result.check(
        "sample exercises open-loop demand scenarios",
        len(demand) > 0 and guarded > 0,
        f"{len(demand)} demand points ({guarded} with admission "
        f"control armed)")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
