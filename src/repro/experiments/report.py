"""Result containers and text rendering for the reproduction experiments.

Every experiment produces an :class:`ExperimentResult`: the rows/series the
paper's figure or table reports, plus *shape checks* — assertions about
orderings, ratios, and crossovers that must hold for the reproduction to
count, independent of absolute numbers (our substrate is a simulator, not
the authors' testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ShapeCheck", "ExperimentResult", "render_table", "fmt"]


def fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with padded columns."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


@dataclass
class ShapeCheck:
    """One verified property of the reproduced result."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}" + (f" — {self.detail}"
                                            if self.detail else "")


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    #: What the paper reports for this figure/table (for EXPERIMENTS.md).
    paper_claim: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Check helpers
    # ------------------------------------------------------------------
    def check(self, name: str, passed: bool, detail: str = "") -> bool:
        self.checks.append(ShapeCheck(name, bool(passed), detail))
        return bool(passed)

    def check_order(self, name: str, values: Dict[str, float],
                    descending_keys: Sequence[str]) -> bool:
        """Check values[k] is monotonically decreasing over the key order."""
        seq = [values[k] for k in descending_keys]
        passed = all(a >= b for a, b in zip(seq, seq[1:]))
        detail = " >= ".join(f"{k}:{fmt(values[k])}" for k in descending_keys)
        return self.check(name, passed, detail)

    def check_ratio(self, name: str, numerator: float, denominator: float,
                    lo: float, hi: Optional[float] = None) -> bool:
        ratio = numerator / denominator if denominator else float("inf")
        passed = ratio >= lo and (hi is None or ratio <= hi)
        bound = f">= {lo}" + (f" and <= {hi}" if hi is not None else "")
        return self.check(name, passed, f"ratio {fmt(ratio)} (want {bound})")

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    # ------------------------------------------------------------------
    # JSON round-trip (the runner caches whole-experiment results)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in self.checks],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            exp_id=data["exp_id"],
            title=data["title"],
            paper_claim=data["paper_claim"],
            headers=list(data.get("headers", [])),
            rows=[list(row) for row in data.get("rows", [])],
            checks=[ShapeCheck(c["name"], c["passed"], c.get("detail", ""))
                    for c in data.get("checks", [])],
            notes=list(data.get("notes", [])),
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        out = [f"== {self.exp_id}: {self.title} ==",
               f"paper: {self.paper_claim}", ""]
        if self.rows:
            out.append(render_table(self.headers, self.rows))
            out.append("")
        for check in self.checks:
            out.append(str(check))
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)
