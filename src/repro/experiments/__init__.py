"""Experiment registry: one entry per paper figure/table.

Each experiment is an :class:`ExperimentSpec`. Point-based experiments
expose their sweep as ``points(quick, seed)`` (independent simulation
points), ``run_point(params, seed)`` (the picklable worker), and
``collect(results, quick, seed)`` (rows + shape checks) — the contract
``repro.runner`` uses to execute sweeps across a process pool. Calling
:func:`run_experiment` runs the same points serially, so results are
bit-identical for any ``--jobs`` value. Run from the command line::

    python -m repro.experiments fig09
    python -m repro.experiments all --full --jobs 8
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from . import (
    ablations,
    capacity,
    chaos,
    dynamic,
    fig09,
    fig11,
    fig12,
    incast,
    lessons,
    limits,
    shard_chaos,
    soak,
    table2,
    table3,
    table4,
)
from .report import ExperimentResult, ShapeCheck, render_table

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment",
           "ExperimentResult", "ShapeCheck", "render_table"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: how to run (and optionally how to sweep) one
    figure/table."""

    exp_id: str
    description: str
    #: ``run(quick, seed=None) -> ExperimentResult`` — serial execution.
    run: Callable[..., ExperimentResult]
    #: ``points(quick, seed=None) -> List[Point]`` (None = not sweepable;
    #: the runner falls back to one whole-experiment point).
    points: Optional[Callable] = None
    #: ``collect(results, quick, seed=None) -> ExperimentResult``.
    collect: Optional[Callable] = None

    def __call__(self, quick: bool = True,
                 seed: Optional[int] = None) -> ExperimentResult:
        return self.run(quick, seed=seed)


def _dynamic_spec(exp_id: str, variant_runner, variant: str,
                  description: str) -> ExperimentSpec:
    return ExperimentSpec(
        exp_id=exp_id,
        description=description,
        run=functools.partial(variant_runner, variant=variant),
        points=functools.partial(dynamic.points, exp_id),
        collect=functools.partial(dynamic.collect, exp_id),
    )


def _module_spec(exp_id: str, module, description: str) -> ExperimentSpec:
    return ExperimentSpec(exp_id=exp_id, description=description,
                          run=module.run, points=module.points,
                          collect=module.collect)


_SPECS: List[ExperimentSpec] = [
    _dynamic_spec("fig04a", dynamic.run_fig04, "a",
                  "Motivation: HostCC/ShRing degrade when the flow mix "
                  "changes (dynamic flow distribution)"),
    _dynamic_spec("fig04b", dynamic.run_fig04, "b",
                  "Motivation: HostCC/ShRing degrade under network bursts"),
    _module_spec("fig09", fig09,
                 "Throughput & LLC miss rate vs packet size, static load"),
    _dynamic_spec("fig10a", dynamic.run_fig10, "a",
                  "End-to-end dynamic flow distribution, CEIO included"),
    _dynamic_spec("fig10b", dynamic.run_fig10, "b",
                  "End-to-end network burst, CEIO included"),
    _module_spec("fig11", fig11,
                 "CEIO fast/slow path bandwidth vs raw ib_write_bw"),
    _module_spec("fig12", fig12,
                 "Aggregate throughput under UD flow churn (512B echo)"),
    _module_spec("capacity", capacity,
                 "SLO-preserving capacity search (open-loop demand) + "
                 "flash-crowd admission/shedding guardrails "
                 "(repro.demand)"),
    _module_spec("incast", incast,
                 "Incast fan-in sweep: N clients x arch on the star "
                 "topology (repro.topo / repro.scenario)"),
    _module_spec("table2", table2,
                 "P99/P99.9 latency under the 512B echo workload"),
    _module_spec("table3", table3,
                 "Fast/slow path latency vs raw RDMA write (ib_write_lat)"),
    _module_spec("table4", table4,
                 "Mixed involved/bypass flows with CEIO ablations"),
    ExperimentSpec("limits",
                   "Scenarios with limited benefit: low pressure & jumbo",
                   run=limits.run),
    _module_spec("ablations", ablations,
                 "Design-choice ablations (credit release, exclusivity, "
                 "cache model)"),
    _module_spec("chaos", chaos,
                 "Chaos suite: goodput retention and recovery under "
                 "injected faults (repro.faults)"),
    _module_spec("shard_chaos", shard_chaos,
                 "Shard chaos suite: fault plans, cut-link channel "
                 "faults and worker kills under sharded execution, "
                 "gated on byte identity (repro.shard)"),
    _module_spec("soak", soak,
                 "Randomized invariant soak: sampled scenario x arch x "
                 "fault plans gated on conservation (repro.audit)"),
    ExperimentSpec("lessons",
                   "§6.4 lessons: zero-copy necessity & transport "
                   "agnosticism",
                   run=lessons.run),
]

EXPERIMENTS: Dict[str, ExperimentSpec] = {s.exp_id: s for s in _SPECS}


def run_experiment(exp_id: str, quick: bool = True,
                   seed: Optional[int] = None) -> ExperimentResult:
    try:
        spec = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; "
                         f"choose from {sorted(EXPERIMENTS)}") from None
    return spec.run(quick, seed=seed)
