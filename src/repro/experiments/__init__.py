"""Experiment registry: one entry per paper figure/table.

Each runner takes ``quick: bool`` (smaller sweeps for CI-speed runs) and
returns an :class:`~repro.experiments.report.ExperimentResult` containing
the figure's rows plus shape checks. Run from the command line::

    python -m repro.experiments fig09
    python -m repro.experiments all --full
"""

from __future__ import annotations

from typing import Callable, Dict

from . import (
    ablations,
    dynamic,
    fig09,
    fig11,
    fig12,
    lessons,
    limits,
    table2,
    table3,
    table4,
)
from .report import ExperimentResult, ShapeCheck, render_table

__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentResult",
           "ShapeCheck", "render_table"]

EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "fig04a": lambda quick=True: dynamic.run_fig04(quick, "a"),
    "fig04b": lambda quick=True: dynamic.run_fig04(quick, "b"),
    "fig09": fig09.run,
    "fig10a": lambda quick=True: dynamic.run_fig10(quick, "a"),
    "fig10b": lambda quick=True: dynamic.run_fig10(quick, "b"),
    "fig11": fig11.run,
    "fig12": fig12.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "limits": limits.run,
    "ablations": ablations.run,
    "lessons": lessons.run,
}


def run_experiment(exp_id: str, quick: bool = True) -> ExperimentResult:
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}; "
                         f"choose from {sorted(EXPERIMENTS)}") from None
    return runner(quick)
