"""§6.4 "Lessons Learned": the quantitative claims behind the prose.

Three lessons with measurable content:

1. **zero-copy is essential** — the improvement gap between eRPC and
   LineFS traces to memory copies: with CEIO's optimal I/O path, an
   otherwise identical RPC server that copies each request loses a large
   fraction of its throughput (the paper measures LineFS at 45% of eRPC's
   at the worst point, with ~10% residual misses from the copies);
2. **slow-path penalty grows with flow count** — the per-flow slow-path
   bandwidth drops when many flows hold on-NIC buffers (chaotic access,
   internal switch; ~15 Gbps at 512 B in the paper);
3. **CEIO is transport-agnostic** — eRPC gains hold under both the DPDK
   and RDMA transports (the compatibility claim of §5).
"""

from __future__ import annotations

from typing import Optional

from ..apps.erpc import ErpcConfig, ErpcServer
from ..net import Flow, FlowKind, SaturatingSource, Testbed
from ..io_arch import build_arch
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig, scaled_host_config
from .report import ExperimentResult

__all__ = ["run"]


DEFAULT_SEED = 37


def _rpc_throughput(zero_copy: bool, quick: bool, seed: int) -> float:
    """Single CEIO server, 8 flows, with/without the zero-copy path."""
    bed = Testbed(host_config=scaled_host_config(4), seed=seed)
    arch = build_arch("ceio", bed.host)
    bed.install_io_arch(arch)
    servers = []
    for i in range(8):
        # 144 B KV requests: the CPU, not the link, is the bottleneck, so
        # per-request copy cost translates directly into lost throughput.
        flow = Flow(FlowKind.CPU_INVOLVED, name=f"f{i}",
                    message_payload=144)
        sender = bed.add_flow(flow)
        server = ErpcServer(arch, flow, bed.host.cpu.allocate(),
                            lambda ctx: 120.0,
                            config=ErpcConfig(zero_copy=zero_copy))
        server.start()
        servers.append(server)
        SaturatingSource(bed.sim, sender, outstanding=96).start()
    horizon = 400 * US if quick else 800 * US
    bed.run(until=horizon)
    total = sum(s.requests.value for s in servers)
    return total / horizon * 1e3  # Mpps


def run(quick: bool = True,
        seed: Optional[int] = None) -> ExperimentResult:
    root_seed = DEFAULT_SEED if seed is None else seed
    result = ExperimentResult(
        exp_id="lessons",
        title="§6.4 lessons: zero-copy necessity & transport agnosticism",
        paper_claim=("LineFS (copying) reaches only ~45% of eRPC "
                     "(zero-copy) under the same optimal I/O path; CEIO's "
                     "gains are similar under DPDK and RDMA transports"),
    )
    result.headers = ["lesson", "variant", "mpps"]

    zc = _rpc_throughput(zero_copy=True, quick=quick, seed=root_seed)
    copying = _rpc_throughput(zero_copy=False, quick=quick,
                              seed=root_seed)
    result.rows.append(["zero-copy", "zero-copy", zc])
    result.rows.append(["zero-copy", "copying", copying])
    result.check(
        "copying forfeits a large share of the optimal path's throughput",
        copying < 0.8 * zc,
        f"copying {copying:.1f} vs zero-copy {zc:.1f} Mpps "
        f"({copying / zc:.0%})")

    gains = {}
    for transport in ("dpdk", "rdma"):
        rates = {}
        for arch in ("baseline", "ceio"):
            config = ScenarioConfig(
                arch=arch, n_involved=8, payload=144, transport=transport,
                warmup=(300 * US if quick else 600 * US),
                duration=(400 * US if quick else 800 * US), seed=root_seed)
            rates[arch] = Scenario(config).build().run_measure().involved_mpps
        gains[transport] = rates["ceio"] / max(1e-9, rates["baseline"])
        result.rows.append([f"transport-{transport}", "baseline",
                            rates["baseline"]])
        result.rows.append([f"transport-{transport}", "ceio",
                            rates["ceio"]])
    result.check(
        "CEIO's speedup is comparable under DPDK and RDMA (within 30%)",
        abs(gains["dpdk"] - gains["rdma"])
        <= 0.3 * max(gains["dpdk"], gains["rdma"]),
        f"dpdk x{gains['dpdk']:.2f} vs rdma x{gains['rdma']:.2f}")
    return result
