"""Chaos suite: goodput retention and recovery under injected faults.

The central scenario is *credit loss*: a ``hw.nic descriptor_drop`` fault
makes the NIC's DMA engine silently discard host-bound descriptor writes
for a 200 us window. For CEIO every dropped fast-path write is a leaked
credit (granted, never released) and a permanent ordering hole in the
software ring (issued, never delivered) — exactly the failure mode §5's
recovery machinery exists for. The sweep runs the fault at increasing
magnitude (drop probability) against four variants:

- ``ceio`` — full recovery: credit-loss watchdog, software-ring
  stuck-slot release, spill-to-DRAM;
- ``ceio-norecovery`` — the ablation with all three disabled;
- ``shring`` / ``baseline`` — the paper's comparison points (no credits
  to lose, but dropped writes leak ring descriptors).

Each point measures goodput in a pre-fault window, during the fault, and
in six consecutive post-fault windows, so ``collect`` can report both
*retention* (goodput during the fault) and *recovery* (goodput once the
fault clears). Shape checks assert the tentpole claims: CEIO sustains
non-zero goodput through the fault and recovers to near pre-fault levels,
while the watchdog-disabled ablation deadlocks — consumed credits are
never reclaimed, the ordering barrier can never be met, and the flow
starves permanently.

Like every sweep, the experiment is bit-reproducible for any ``--jobs``
value: the fault plan rides inside each point's params (and its canonical
JSON is part of the point's cache identity), so a worker process
reconstructs the exact same faulted testbed the serial path builds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..core import CeioConfig
from ..faults import FaultPlan, FaultSpec
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

DEFAULT_SEED = 23
_FN = "repro.experiments.chaos:run_point"

VARIANTS = ["ceio", "ceio-norecovery", "shring", "baseline"]
MAGS_QUICK = [0.5, 1.0]
MAGS_FULL = [0.25, 0.5, 0.75, 1.0]

#: Timeline (all absolute from t=0): warm up, measure a healthy window,
#: then the fault spans exactly the "during" window, then six post
#: windows observe recovery.
WARMUP = 300 * US
PRE = 200 * US
FAULT = 200 * US
POST = 100 * US
N_POST = 6

#: LLC scale 8 with 4 involved flows gives each flow 96 credits — the
#: same per-flow credit budget as the default 8-flow/scale-4 setups, but
#: a full-magnitude fault exhausts it well inside the fault window, so
#: the credit-loss wedge (and the recovery from it) happens on-sweep.
SCALE = 8
N_INVOLVED = 4
#: Closed-loop window per client, well under the 96-credit budget: healthy
#: flows never exhaust credits, so every degrade during the sweep is
#: fault-caused — the ablation's wedge is deterministic, not a race with
#: ordinary credit churn.
OUTSTANDING = 32


def _label(variant: str, magnitude: float) -> str:
    return f"{variant}.m{magnitude:g}"


def _plan(magnitude: float) -> FaultPlan:
    return FaultPlan((FaultSpec("hw.nic", "descriptor_drop",
                                start=WARMUP + PRE, duration=FAULT,
                                magnitude=magnitude),))


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    mags = MAGS_QUICK if quick else MAGS_FULL
    pts = []
    for variant in VARIANTS:
        for mag in mags:
            plan = _plan(mag)
            params = {"variant": variant, "magnitude": mag, "quick": quick,
                      "faults": plan.to_dicts()}
            pts.append(make_point(
                "chaos", _FN, params, seed, DEFAULT_SEED,
                label=_label(variant, mag), faults=plan.canonical()))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    plan = FaultPlan.from_dicts(params["faults"])
    variant = params["variant"]
    arch = "ceio" if variant.startswith("ceio") else variant
    ceio_cfg = None
    if variant == "ceio-norecovery":
        ceio_cfg = CeioConfig(credit_watchdog=False,
                              swring_stuck_timeout=0.0,
                              spill_to_dram=False)
    config = ScenarioConfig(arch=arch, scale=SCALE, n_involved=N_INVOLVED,
                            outstanding=OUTSTANDING, seed=seed,
                            ceio=ceio_cfg, faults=plan,
                            warmup=WARMUP, duration=PRE)
    scenario = Scenario(config).build()
    pre = scenario.run_measure()
    during = scenario.run_measure(0.0, FAULT)
    posts = [scenario.run_measure(0.0, POST) for _ in range(N_POST)]

    windows = [pre, during] + posts
    out: Dict[str, Any] = {
        "pre": pre.involved_mpps,
        "during": during.involved_mpps,
        "post": [m.involved_mpps for m in posts],
        "dropped_writes": scenario.testbed.host.nic.dma.dropped_writes.value,
        # Per-flow drops summed over every measured window — includes the
        # silently-lost DMA writes that baseline/shring/hostcc previously
        # failed to account into Measurement.dropped.
        "dropped_total": sum(m.dropped for m in windows),
        "audit_violations": sum(
            len((m.audit or {}).get("violations", ())) for m in windows),
    }
    for attr in ("credit_reclaimed", "swring_holes", "spilled"):
        counter = getattr(scenario.arch, attr, None)
        if counter is not None:
            out[attr] = counter.value
    return out


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="chaos",
        title="Goodput retention and recovery under injected faults",
        paper_claim=("CEIO's §5 recovery machinery (credit-loss watchdog, "
                     "stuck-slot release, spill-to-DRAM) keeps the data "
                     "path live through a descriptor-drop fault and "
                     "restores goodput afterwards; without it, leaked "
                     "credits and unmeetable ordering barriers deadlock "
                     "the flow"),
    )
    result.headers = ["variant", "mag", "pre_mpps", "during_mpps",
                      "final_mpps", "retention_%", "dropped", "reclaimed"]
    mags = MAGS_QUICK if quick else MAGS_FULL

    def cell(variant: str, mag: float) -> Dict[str, Any]:
        return results[f"chaos/{_label(variant, mag)}"]

    for variant in VARIANTS:
        for mag in mags:
            value = cell(variant, mag)
            final = value["post"][-1]
            retention = (final / value["pre"] * 100.0) if value["pre"] else 0.0
            result.rows.append([
                variant, mag, value["pre"], value["during"], final,
                retention, value["dropped_writes"],
                value.get("credit_reclaimed", 0.0)])

    worst = mags[-1]
    ceio = cell("ceio", worst)
    ablation = cell("ceio-norecovery", worst)
    result.check(
        f"ceio sustains goodput during the m{worst:g} fault",
        ceio["during"] > 0,
        f"{ceio['during']:.2f} Mpps while every fast-path DMA write drops")
    result.check_ratio(
        f"ceio recovers after the m{worst:g} fault (final/pre)",
        ceio["post"][-1], ceio["pre"], 0.5)
    result.check(
        "recovery is driven by the credit watchdog",
        ceio.get("credit_reclaimed", 0.0) > 0,
        f"{ceio.get('credit_reclaimed', 0.0):.0f} leaked credits reclaimed")
    result.check(
        f"watchdog-disabled ablation deadlocks at m{worst:g}",
        ablation["post"][-1] < 0.1 * ablation["pre"],
        f"final {ablation['post'][-1]:.3f} vs pre "
        f"{ablation['pre']:.2f} Mpps with "
        f"{ablation.get('credit_reclaimed', 0.0):.0f} credits reclaimed")
    shring = cell("shring", worst)
    result.check(
        f"shring has no descriptor reclaim and wedges at m{worst:g}",
        shring["post"][-1] < 0.1 * shring["pre"],
        f"{shring['dropped_writes']:.0f} leaked descriptors exhaust the "
        "shared ring")
    for mag in mags:
        value = cell("ceio", mag)
        result.check(
            f"no deadlock: ceio goodput recovers at m{mag:g}",
            value["post"][-1] > 0,
            f"final {value['post'][-1]:.2f} Mpps")
    result.notes.append(
        "baseline rides the fault out on its oversized rings' standing "
        "backlog (the very over-provisioning that thrashes its LLC) but "
        "silently loses every dropped request — see the 'dropped' column")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
