"""Figure 11: CEIO fast path vs slow path vs perftest ib_write_bw.

Single-flow RDMA-write bandwidth over message size; the slow path is
forced by zeroing the flow's credits. Paper: the fast path matches raw
perftest (flow-control overhead negligible) and the slow path approaches
the fast path once messages exceed 4 KB (gap < 22%).

Sweep decomposition: one point per (mode, message size) — ``raw`` is the
baseline architecture, ``fast``/``slow`` are CEIO with and without
credits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..apps import ib_write_bw
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import MS
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

SIZES_QUICK = [512, 4096, 65536]
SIZES_FULL = [64, 512, 1024, 4096, 16384, 65536]
MODES = ["raw", "fast", "slow"]
#: perftest's own default seed (``ib_write_bw(seed=0)``) — kept so the
#: default sweep is bit-identical to the pre-runner figure.
DEFAULT_SEED = 0
_FN = "repro.experiments.fig11:run_point"


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    sizes = SIZES_QUICK if quick else SIZES_FULL
    pts = []
    for size in sizes:
        for mode in MODES:
            params = {"mode": mode, "size": size, "quick": quick}
            pts.append(make_point("fig11", _FN, params, seed, DEFAULT_SEED,
                                  label=f"{mode}.{size}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    duration = 0.3 * MS if params["quick"] else 0.8 * MS
    arch = "baseline" if params["mode"] == "raw" else "ceio"
    bw = ib_write_bw(arch, params["size"], duration=duration,
                     force_slow=params["mode"] == "slow", seed=seed)
    return {"gbps": bw.gbps}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="Fast path vs slow path vs ib_write_bw",
        paper_claim=("CEIO fast path ~= ib_write_bw (control overhead "
                     "negligible); slow path within 22% of fast beyond 4KB"),
    )
    result.headers = ["msg_B", "raw_gbps", "fast_gbps", "slow_gbps",
                      "slow_gap_%"]
    sizes = SIZES_QUICK if quick else SIZES_FULL
    raw = {s: results[f"fig11/raw.{s}"]["gbps"] for s in sizes}
    fast = {s: results[f"fig11/fast.{s}"]["gbps"] for s in sizes}
    slow = {s: results[f"fig11/slow.{s}"]["gbps"] for s in sizes}
    for size in sizes:
        gap = 100 * (1 - slow[size] / max(1e-9, fast[size]))
        result.rows.append([size, raw[size], fast[size], slow[size], gap])

    for size in sizes:
        result.check(
            f"fast path matches raw perftest at {size}B (<=5% off)",
            abs(fast[size] - raw[size]) / max(1e-9, raw[size]) <= 0.05,
            f"raw {raw[size]:.1f} vs fast {fast[size]:.1f} Gbps")
    big = [s for s in sizes if s >= 4096]
    for size in big:
        result.check(
            f"slow-path gap under 22% at {size}B",
            slow[size] >= 0.78 * fast[size],
            f"gap {100*(1 - slow[size]/max(1e-9, fast[size])):.1f}%")
    small = sizes[0]
    result.check(
        "slow path is worst (relatively) for the smallest messages",
        (slow[small] / max(1e-9, fast[small]))
        <= min(slow[s] / max(1e-9, fast[s]) for s in big) + 1e-9,
    )
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
