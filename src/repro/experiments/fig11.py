"""Figure 11: CEIO fast path vs slow path vs perftest ib_write_bw.

Single-flow RDMA-write bandwidth over message size; the slow path is
forced by zeroing the flow's credits. Paper: the fast path matches raw
perftest (flow-control overhead negligible) and the slow path approaches
the fast path once messages exceed 4 KB (gap < 22%).
"""

from __future__ import annotations

from ..apps import ib_write_bw
from ..sim.units import MS
from .report import ExperimentResult

__all__ = ["run"]

SIZES_QUICK = [512, 4096, 65536]
SIZES_FULL = [64, 512, 1024, 4096, 16384, 65536]


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="Fast path vs slow path vs ib_write_bw",
        paper_claim=("CEIO fast path ~= ib_write_bw (control overhead "
                     "negligible); slow path within 22% of fast beyond 4KB"),
    )
    result.headers = ["msg_B", "raw_gbps", "fast_gbps", "slow_gbps",
                      "slow_gap_%"]
    sizes = SIZES_QUICK if quick else SIZES_FULL
    duration = 0.3 * MS if quick else 0.8 * MS
    raw = {}
    fast = {}
    slow = {}
    for size in sizes:
        raw[size] = ib_write_bw("baseline", size, duration=duration).gbps
        fast[size] = ib_write_bw("ceio", size, duration=duration).gbps
        slow[size] = ib_write_bw("ceio", size, duration=duration,
                                 force_slow=True).gbps
        gap = 100 * (1 - slow[size] / max(1e-9, fast[size]))
        result.rows.append([size, raw[size], fast[size], slow[size], gap])

    for size in sizes:
        result.check(
            f"fast path matches raw perftest at {size}B (<=5% off)",
            abs(fast[size] - raw[size]) / max(1e-9, raw[size]) <= 0.05,
            f"raw {raw[size]:.1f} vs fast {fast[size]:.1f} Gbps")
    big = [s for s in sizes if s >= 4096]
    for size in big:
        result.check(
            f"slow-path gap under 22% at {size}B",
            slow[size] >= 0.78 * fast[size],
            f"gap {100*(1 - slow[size]/max(1e-9, fast[size])):.1f}%")
    small = sizes[0]
    result.check(
        "slow path is worst (relatively) for the smallest messages",
        (slow[small] / max(1e-9, fast[small]))
        <= min(slow[s] / max(1e-9, fast[s]) for s in big) + 1e-9,
    )
    return result
