"""Figures 4 and 10: dynamic flow distribution and network burst.

Figure 4 (motivation, §2.3) runs HostCC and ShRing only, comparing each
phase's CPU-involved throughput against the *expected* performance
(number of CPU-involved flows x the single-core throughput of ShRing with
sufficient LLC). Figure 10 repeats both scenarios with CEIO included.

Scenario definitions (time scaled from the paper's 10 s phases to
sub-millisecond phases; the control loops run at µs granularity so the
transients are fully exercised):

- *dynamic flow distribution*: start with 8 CPU-involved eRPC flows; each
  phase replaces two of them with CPU-bypass LineFS flows;
- *network burst*: start with 8 CPU-involved flows; each phase adds two
  burst CPU-involved flows on two extra cores.

Sweep decomposition: one point per architecture *trajectory* (the phases
of one arch are a causal sequence and cannot be split) plus one shared
"expected performance" calibration point. Because points are identified
structurally, Fig. 4a's HostCC/ShRing trajectories are literally the same
points as Fig. 10a's — the runner executes them once for both figures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..hw import CacheConfig, HostConfig
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import MIB, US
from ..workloads import (
    Scenario,
    ScenarioConfig,
    add_two_burst_flows,
    replace_two_with_bypass,
)
from .report import ExperimentResult

__all__ = ["expected_per_core_mpps", "run_dynamic", "run_fig04", "run_fig10",
           "points", "run_point", "collect"]

DEFAULT_SEED = 11
EXPECTED_SEED = 3
_FN = "repro.experiments.dynamic:run_point"

_ARCHS = {
    "fig04a": ["hostcc", "shring"],
    "fig04b": ["hostcc", "shring"],
    "fig10a": ["baseline", "hostcc", "shring", "ceio"],
    "fig10b": ["baseline", "hostcc", "shring", "ceio"],
}


def expected_per_core_mpps(payload: int, seed: int = EXPECTED_SEED) -> float:
    """The paper's expected-performance reference: single-core ShRing
    throughput with *sufficient LLC* (we grant an over-sized LLC so no
    misses can occur)."""
    big_cache = HostConfig(cache=CacheConfig(size=256 * MIB))
    config = ScenarioConfig(arch="shring", n_involved=1, payload=payload,
                            host_config=big_cache, warmup=200 * US,
                            duration=300 * US, seed=seed)
    m = Scenario(config).build().run_measure()
    return m.involved_mpps


def run_dynamic(archs: List[str], scenario_kind: str, phases: int,
                quick: bool, seed: int = DEFAULT_SEED):
    """Run one dynamic scenario for several architectures.

    Returns {arch: [per-phase involved Mpps]}, {arch: [per-phase miss]}.
    """
    action = (replace_two_with_bypass if scenario_kind == "dynamic"
              else add_two_burst_flows)
    phase_warmup = 250 * US if quick else 500 * US
    phase_duration = (300 * US) if quick else (600 * US)
    mpps: Dict[str, List[float]] = {}
    miss: Dict[str, List[float]] = {}
    for arch in archs:
        scenario = Scenario(ScenarioConfig(arch=arch, n_involved=8,
                                           seed=seed)).build()
        results = scenario.run_phases([action] * phases,
                                      phase_warmup, phase_duration)
        mpps[arch] = [m.involved_mpps for m in results]
        miss[arch] = [m.llc_miss_rate for m in results]
    return mpps, miss


def _involved_counts(scenario_kind: str, phases: int) -> List[int]:
    if scenario_kind == "dynamic":
        return [8 - 2 * i for i in range(phases + 1)]
    return [8 + 2 * i for i in range(phases + 1)]


# ----------------------------------------------------------------------
# Sweep interface
# ----------------------------------------------------------------------
def points(exp_id: str, quick: bool = True,
           seed: Optional[int] = None) -> List[Point]:
    scenario_kind = "dynamic" if exp_id.endswith("a") else "burst"
    phases = 2 if quick else 3
    pts = [make_point(exp_id, _FN,
                      {"kind": "expected", "payload": 144},
                      seed, EXPECTED_SEED, label="expected.144")]
    for arch in _ARCHS[exp_id]:
        params = {"kind": scenario_kind, "arch": arch, "phases": phases,
                  "quick": quick}
        pts.append(make_point(exp_id, _FN, params, seed, DEFAULT_SEED,
                              label=f"{scenario_kind}.{arch}.p{phases}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    if params["kind"] == "expected":
        return {"per_core": expected_per_core_mpps(params["payload"], seed)}
    mpps, miss = run_dynamic([params["arch"]], params["kind"],
                             params["phases"], params["quick"], seed)
    return {"mpps": mpps[params["arch"]], "miss": miss[params["arch"]]}


def collect(exp_id: str, results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    titles = {
        "fig04a": "Motivation: degradation under dynamic flow distribution",
        "fig04b": "Motivation: degradation under network burst",
        "fig10a": "End-to-end: dynamic flow distribution",
        "fig10b": "End-to-end: network burst",
    }
    claims = {
        "fig04a": ("HostCC/ShRing fall up to 1.9x/1.6x below expected "
                   "performance when the flow mix changes"),
        "fig04b": "degradation is even larger under bursts",
        "fig10a": "CEIO achieves up to 2.0x speedup over HostCC/ShRing",
        "fig10b": "CEIO achieves up to 2.9x speedup under bursts",
    }
    result = ExperimentResult(exp_id=exp_id, title=titles[exp_id],
                              paper_claim=claims[exp_id])
    archs = _ARCHS[exp_id]
    scenario_kind = "dynamic" if exp_id.endswith("a") else "burst"
    phases = 2 if quick else 3
    per_core = results[f"{exp_id}/expected.144"]["per_core"]
    counts = _involved_counts(scenario_kind, phases)
    mpps = {}
    miss = {}
    for arch in archs:
        value = results[f"{exp_id}/{scenario_kind}.{arch}.p{phases}"]
        mpps[arch] = value["mpps"]
        miss[arch] = value["miss"]

    result.headers = (["phase", "n_involved", "expected_mpps"]
                      + [f"{a}_mpps" for a in archs]
                      + [f"{a}_miss%" for a in archs])
    for phase in range(phases + 1):
        expected = counts[phase] * per_core
        result.rows.append(
            [phase, counts[phase], expected]
            + [mpps[a][phase] for a in archs]
            + [miss[a][phase] * 100 for a in archs])

    last = phases  # the most perturbed phase
    expected_last = counts[last] * per_core
    for arch in archs:
        if arch == "ceio":
            continue
        result.check(
            f"{arch} falls below expected in perturbed phases",
            mpps[arch][last] < expected_last,
            f"{mpps[arch][last]:.1f} vs expected {expected_last:.1f} Mpps")
    if "ceio" in archs:
        rivals = [a for a in archs if a not in ("ceio",)]
        best_rival = max(mpps[a][last] for a in rivals)
        result.check_ratio(
            "ceio beats the best prior work in the most perturbed phase",
            mpps["ceio"][last], best_rival, 1.0)
        result.check(
            "ceio stays within 35% of expected",
            mpps["ceio"][last] > 0.65 * expected_last,
            f"{mpps['ceio'][last]:.1f} vs expected {expected_last:.1f}")
    return result


def _run(exp_id: str, quick: bool, seed: Optional[int]) -> ExperimentResult:
    return collect(exp_id, run_points_serial(points(exp_id, quick, seed)),
                   quick, seed)


def run_fig04(quick: bool = True, variant: str = "a",
              seed: Optional[int] = None) -> ExperimentResult:
    return _run(f"fig04{variant}", quick, seed)


def run_fig10(quick: bool = True, variant: str = "a",
              seed: Optional[int] = None) -> ExperimentResult:
    return _run(f"fig10{variant}", quick, seed)
