"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these benches justify individual CEIO mechanisms:

- **lazy vs eager credit release** (§4.1): eager release replenishes
  bypass flows as fast as involved ones, eroding the fast-path priority
  of CPU-involved traffic in mixed workloads;
- **phase exclusivity** (§4.2): without it the SW ring observes reordered
  packets;
- **cache model fidelity**: the fast fully-associative LLC model and the
  detailed set-associative model agree on the headline numbers.
"""

from __future__ import annotations

from ..core import CeioConfig
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run"]


def _mixed(quick: bool, ceio: CeioConfig, seed: int = 29):
    config = ScenarioConfig(
        arch="ceio", n_involved=4, n_bypass=4, payload=144,
        bypass_payload=1024, chunk_packets=32,
        warmup=(400 * US if quick else 800 * US),
        duration=(500 * US if quick else 1000 * US),
        seed=seed, ceio=ceio)
    scenario = Scenario(config).build()
    measurement = scenario.run_measure()
    return scenario, measurement


def _static(quick: bool, set_associative: bool, seed: int = 29):
    # Full-buffer payloads: with 2 KB-aligned buffers nearly filled, both
    # cache models see the same occupancy. (At small payloads they
    # legitimately diverge — the set-associative model captures the
    # alignment waste of 2 KB-strided mbufs, which the byte-accounted
    # fully-associative model cannot; see the result note.)
    config = ScenarioConfig(
        arch="ceio", n_involved=8, payload=1900,
        set_associative_cache=set_associative,
        warmup=(300 * US if quick else 600 * US),
        duration=(400 * US if quick else 800 * US), seed=seed)
    return Scenario(config).build().run_measure()


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ablations",
        title="Design-choice ablations (lazy release, phase exclusivity, "
              "cache model)",
        paper_claim=("lazy release is what keeps CPU-involved flows on the "
                     "fast path (§4.1); phase exclusivity is what keeps the "
                     "SW ring ordered (§4.2)"),
    )
    result.headers = ["ablation", "variant", "involved_mpps",
                      "fast_fraction", "out_of_order"]

    # 1. Lazy vs eager credit release in a mixed workload.
    variants = {}
    for name, lazy in (("lazy", True), ("eager", False)):
        scenario, m = _mixed(quick, CeioConfig(lazy_release=lazy))
        variants[name] = (scenario, m)
        result.rows.append(["credit-release", name, m.involved_mpps,
                            m.extras.get("fast_fraction", 0.0), 0])
    lazy_ff = variants["lazy"][1].extras.get("fast_fraction", 0.0)
    eager_ff = variants["eager"][1].extras.get("fast_fraction", 0.0)
    result.check(
        "lazy release sustains involved throughput at least as well",
        variants["lazy"][1].involved_mpps
        >= 0.95 * variants["eager"][1].involved_mpps,
        f"lazy {variants['lazy'][1].involved_mpps:.1f} vs "
        f"eager {variants['eager'][1].involved_mpps:.1f} Mpps")
    result.notes.append(
        f"fast fraction lazy={lazy_ff:.2f} eager={eager_ff:.2f}")

    # 2. Phase exclusivity and SW-ring ordering.
    for name, exclusive in (("exclusive", True), ("interleaved", False)):
        scenario, m = _mixed(quick, CeioConfig(phase_exclusivity=exclusive),
                             seed=31)
        ooo = sum(st.swring.out_of_order
                  for st in scenario.arch.states.values())
        result.rows.append(["phase-exclusivity", name, m.involved_mpps,
                            m.extras.get("fast_fraction", 0.0), ooo])
        if exclusive:
            result.check("phase exclusivity: zero out-of-order deliveries",
                         ooo == 0, f"{ooo} reordered")
        else:
            result.check("without exclusivity reordering is observed",
                         ooo > 0, f"{ooo} reordered")

    # 3. MPQ (the §4.1 rejected alternative) vs CEIO's lazy-release design.
    # Continuous RPC streams are *not short flows*: PIAS-style priority
    # decay demotes them off the fast path just like bulk transfers.
    mpq_cfg = ScenarioConfig(
        arch="mpq", n_involved=4, n_bypass=4, payload=144,
        bypass_payload=1024, chunk_packets=32,
        warmup=(400 * US if quick else 800 * US),
        duration=(500 * US if quick else 1000 * US), seed=29)
    mpq_scenario = Scenario(mpq_cfg).build()
    mpq = mpq_scenario.run_measure()
    ceio_scenario, ceio_m = _mixed(quick, CeioConfig())
    result.rows.append(["priority-scheme", "mpq", mpq.involved_mpps,
                        mpq_scenario.arch.high_fraction(), 0])
    result.rows.append(["priority-scheme", "ceio-lazy",
                        ceio_m.involved_mpps,
                        ceio_m.extras.get("fast_fraction", 0.0), 0])
    result.check(
        "PIAS-style MPQ demotes continuous RPC flows (demotions observed)",
        mpq_scenario.arch.demotions.value > 0,
        f"{mpq_scenario.arch.demotions.value:.0f} demotions")
    result.check(
        "CEIO's lazy release beats the rejected MPQ design on RPC "
        "throughput",
        ceio_m.involved_mpps >= mpq.involved_mpps,
        f"ceio {ceio_m.involved_mpps:.1f} vs mpq {mpq.involved_mpps:.1f}")

    # 4. Cache-model fidelity.
    fast_model = _static(quick, set_associative=False)
    detailed = _static(quick, set_associative=True)
    result.rows.append(["cache-model", "fully-assoc",
                        fast_model.involved_mpps, 0, 0])
    result.rows.append(["cache-model", "set-assoc",
                        detailed.involved_mpps, 0, 0])
    result.check(
        "cache models agree on CEIO throughput (within 20%, full buffers)",
        abs(fast_model.involved_mpps - detailed.involved_mpps)
        <= 0.20 * max(fast_model.involved_mpps, 1e-9),
        f"{fast_model.involved_mpps:.1f} vs {detailed.involved_mpps:.1f}")
    result.notes.append(
        "at small payloads the models diverge by design: the "
        "set-associative model charges whole 2KB-aligned buffer strides "
        "(real DDIO alignment waste), the fully-associative model charges "
        "bytes")
    return result
