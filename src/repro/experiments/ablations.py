"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these benches justify individual CEIO mechanisms:

- **lazy vs eager credit release** (§4.1): eager release replenishes
  bypass flows as fast as involved ones, eroding the fast-path priority
  of CPU-involved traffic in mixed workloads;
- **phase exclusivity** (§4.2): without it the SW ring observes reordered
  packets;
- **cache model fidelity**: the fast fully-associative LLC model and the
  detailed set-associative model agree on the headline numbers.

Sweep decomposition: one point per ablated configuration. The
"priority-scheme ceio-lazy" row reuses the lazy credit-release point —
same configuration, same seed, so (by determinism) the same simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..core import CeioConfig
from ..runner.sweep import Point, make_point, run_points_serial
from ..sim.units import US
from ..workloads import Scenario, ScenarioConfig
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

MIXED_SEED = 29
EXCLUSIVITY_SEED = 31
_FN = "repro.experiments.ablations:run_point"


def _mixed_config(quick: bool, ceio: CeioConfig, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        arch="ceio", n_involved=4, n_bypass=4, payload=144,
        bypass_payload=1024, chunk_packets=32,
        warmup=(400 * US if quick else 800 * US),
        duration=(500 * US if quick else 1000 * US),
        seed=seed, ceio=ceio)


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    def mixed(lazy: bool, exclusive: bool, default_seed: int,
              label: str) -> Point:
        params = {"kind": "mixed", "lazy_release": lazy,
                  "phase_exclusivity": exclusive, "quick": quick}
        return make_point("ablations", _FN, params, seed, default_seed,
                          label=label)

    pts = [
        mixed(True, True, MIXED_SEED, "mixed.lazy"),
        mixed(False, True, MIXED_SEED, "mixed.eager"),
        mixed(True, True, EXCLUSIVITY_SEED, "mixed.exclusive"),
        mixed(True, False, EXCLUSIVITY_SEED, "mixed.interleaved"),
        make_point("ablations", _FN, {"kind": "mpq", "quick": quick},
                   seed, MIXED_SEED, label="mpq"),
        make_point("ablations", _FN,
                   {"kind": "static", "set_associative": False,
                    "quick": quick},
                   seed, MIXED_SEED, label="static.fully-assoc"),
        make_point("ablations", _FN,
                   {"kind": "static", "set_associative": True,
                    "quick": quick},
                   seed, MIXED_SEED, label="static.set-assoc"),
    ]
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    quick = params["quick"]
    if params["kind"] == "mixed":
        ceio = CeioConfig(lazy_release=params["lazy_release"],
                          phase_exclusivity=params["phase_exclusivity"])
        scenario = Scenario(_mixed_config(quick, ceio, seed)).build()
        m = scenario.run_measure()
        ooo = sum(st.swring.out_of_order
                  for st in scenario.arch.states.values())
        return {"mpps": m.involved_mpps,
                "fast_fraction": m.extras.get("fast_fraction", 0.0),
                "ooo": ooo}
    if params["kind"] == "mpq":
        config = ScenarioConfig(
            arch="mpq", n_involved=4, n_bypass=4, payload=144,
            bypass_payload=1024, chunk_packets=32,
            warmup=(400 * US if quick else 800 * US),
            duration=(500 * US if quick else 1000 * US), seed=seed)
        scenario = Scenario(config).build()
        m = scenario.run_measure()
        return {"mpps": m.involved_mpps,
                "high_fraction": scenario.arch.high_fraction(),
                "demotions": scenario.arch.demotions.value}
    # Full-buffer payloads: with 2 KB-aligned buffers nearly filled, both
    # cache models see the same occupancy. (At small payloads they
    # legitimately diverge — the set-associative model captures the
    # alignment waste of 2 KB-strided mbufs, which the byte-accounted
    # fully-associative model cannot; see the result note.)
    config = ScenarioConfig(
        arch="ceio", n_involved=8, payload=1900,
        set_associative_cache=params["set_associative"],
        warmup=(300 * US if quick else 600 * US),
        duration=(400 * US if quick else 800 * US), seed=seed)
    m = Scenario(config).build().run_measure()
    return {"mpps": m.involved_mpps}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ablations",
        title="Design-choice ablations (lazy release, phase exclusivity, "
              "cache model)",
        paper_claim=("lazy release is what keeps CPU-involved flows on the "
                     "fast path (§4.1); phase exclusivity is what keeps the "
                     "SW ring ordered (§4.2)"),
    )
    result.headers = ["ablation", "variant", "involved_mpps",
                      "fast_fraction", "out_of_order"]

    # 1. Lazy vs eager credit release in a mixed workload.
    lazy = results["ablations/mixed.lazy"]
    eager = results["ablations/mixed.eager"]
    for name, m in (("lazy", lazy), ("eager", eager)):
        result.rows.append(["credit-release", name, m["mpps"],
                            m["fast_fraction"], 0])
    result.check(
        "lazy release sustains involved throughput at least as well",
        lazy["mpps"] >= 0.95 * eager["mpps"],
        f"lazy {lazy['mpps']:.1f} vs eager {eager['mpps']:.1f} Mpps")
    result.notes.append(
        f"fast fraction lazy={lazy['fast_fraction']:.2f} "
        f"eager={eager['fast_fraction']:.2f}")

    # 2. Phase exclusivity and SW-ring ordering.
    for name, key in (("exclusive", "ablations/mixed.exclusive"),
                      ("interleaved", "ablations/mixed.interleaved")):
        m = results[key]
        result.rows.append(["phase-exclusivity", name, m["mpps"],
                            m["fast_fraction"], m["ooo"]])
        if name == "exclusive":
            result.check("phase exclusivity: zero out-of-order deliveries",
                         m["ooo"] == 0, f"{m['ooo']} reordered")
        else:
            result.check("without exclusivity reordering is observed",
                         m["ooo"] > 0, f"{m['ooo']} reordered")

    # 3. MPQ (the §4.1 rejected alternative) vs CEIO's lazy-release design.
    # Continuous RPC streams are *not short flows*: PIAS-style priority
    # decay demotes them off the fast path just like bulk transfers.
    mpq = results["ablations/mpq"]
    result.rows.append(["priority-scheme", "mpq", mpq["mpps"],
                        mpq["high_fraction"], 0])
    result.rows.append(["priority-scheme", "ceio-lazy", lazy["mpps"],
                        lazy["fast_fraction"], 0])
    result.check(
        "PIAS-style MPQ demotes continuous RPC flows (demotions observed)",
        mpq["demotions"] > 0,
        f"{mpq['demotions']:.0f} demotions")
    result.check(
        "CEIO's lazy release beats the rejected MPQ design on RPC "
        "throughput",
        lazy["mpps"] >= mpq["mpps"],
        f"ceio {lazy['mpps']:.1f} vs mpq {mpq['mpps']:.1f}")

    # 4. Cache-model fidelity.
    fa = results["ablations/static.fully-assoc"]
    sa = results["ablations/static.set-assoc"]
    result.rows.append(["cache-model", "fully-assoc", fa["mpps"], 0, 0])
    result.rows.append(["cache-model", "set-assoc", sa["mpps"], 0, 0])
    result.check(
        "cache models agree on CEIO throughput (within 20%, full buffers)",
        abs(fa["mpps"] - sa["mpps"]) <= 0.20 * max(fa["mpps"], 1e-9),
        f"{fa['mpps']:.1f} vs {sa['mpps']:.1f}")
    result.notes.append(
        "at small payloads the models diverge by design: the "
        "set-associative model charges whole 2KB-aligned buffer strides "
        "(real DDIO alignment waste), the fully-associative model charges "
        "bytes")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
