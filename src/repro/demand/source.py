"""The open-loop demand source: drives a transport sender from a lazy
arrival-timestamp iterator.

Where :class:`repro.net.source.OpenLoopSource` offers a fixed Poisson
rate, :class:`DemandSource` follows any arrival process from
:mod:`repro.demand.arrivals` — time-varying profiles, heavy-tailed
sessions — submitting one application message per arrival timestamp.
Timestamps are interpreted relative to the source's start (plus the
scenario's stagger delay), mirroring how a real load generator replays a
trace from its own t=0.

Open-loop semantics: submission never waits for completions. Under
overload the sender-side backlog grows, and because latency for
demand-driven flows is measured from *submission* (see
``FlowRx.latency_from_submit``), that queueing is visible in the tail
instead of being coordinated-omission'd away.
"""

from __future__ import annotations

from typing import Iterator

from ..net.dctcp import DctcpSender
from ..net.packet import Flow
from ..sim import Interrupt, Simulator
from ..sim.stats import Counter

__all__ = ["DemandSource"]


class DemandSource:
    """Submit one message per timestamp of a lazy arrival iterator."""

    def __init__(self, sim: Simulator, sender: DctcpSender,
                 arrivals: Iterator[float]):
        self.sim = sim
        self.sender = sender
        self.arrivals = arrivals
        self.messages_submitted = Counter(
            f"{sender.flow.name}.submitted")
        self._running = False
        self._proc = None

    @property
    def flow(self) -> Flow:
        return self.sender.flow

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(self._loop(delay), name="demand-src")

    def stop(self) -> None:
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _loop(self, delay: float = 0.0):
        try:
            if delay > 0:
                yield delay
            origin = self.sim.now
            for t in self.arrivals:
                due = origin + t
                wait = due - self.sim.now
                if wait > 0:
                    yield wait
                if not self._running:
                    return
                self.sender.submit_message(self.flow.make_message())
                self.messages_submitted.add(1)
        except Interrupt:
            return
