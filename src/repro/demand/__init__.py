"""Seeded, time-varying open-loop demand models (the million-user
workload layer).

Three pieces, each lazy and reproducible from named RNG streams:

- :mod:`repro.demand.profiles` — rate curves over simulation time
  (steady / diurnal / flash-crowd / piecewise windows);
- :mod:`repro.demand.arrivals` — arrival processes over those curves
  (thinned non-homogeneous Poisson, heavy-tailed sessions), yielded one
  timestamp at a time so huge horizons are O(1) memory;
- :mod:`repro.demand.source` — the :class:`DemandSource` that replays an
  arrival stream into a transport sender.

Scenarios declare demand in the versioned ``demand`` block
(:mod:`repro.scenario.schema`); ``TopoScenario`` compiles it into one
``DemandSource`` per flow plus an SLO tracker per server host. See
``docs/WORKLOADS.md``.
"""

from .arrivals import poisson_times, session_times
from .profiles import (MPPS_PER_NS, DiurnalProfile, FlashCrowdProfile,
                       PROFILE_KINDS, RateProfile, ScaledProfile,
                       SteadyProfile, WindowsProfile, profile_from_dict)
from .source import DemandSource

__all__ = [
    "MPPS_PER_NS", "PROFILE_KINDS", "RateProfile", "SteadyProfile",
    "DiurnalProfile", "FlashCrowdProfile", "WindowsProfile",
    "ScaledProfile", "profile_from_dict", "poisson_times", "session_times",
    "DemandSource",
]
