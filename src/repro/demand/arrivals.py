"""Lazy arrival processes over time-varying rate profiles.

Both generators here are *lazy*: they yield timestamps one at a time,
drawing from the supplied seeded RNG stream only as they advance, so a
million-user horizon never materialises a list (the determinism contract
of ``docs/WORKLOADS.md``: the timestamp sequence is a pure function of
``(stream, profile, parameters)`` — identical across ``--jobs`` counts
and shard partitions because each source owns its named stream).

- :func:`poisson_times` — non-homogeneous Poisson via Lewis thinning:
  candidates at the profile's peak rate, accepted with probability
  ``rate(t) / peak``. Exactly two RNG draws per candidate whether or not
  it is accepted, which is what makes the sequence reproducible.
- :func:`session_times` — heavy-tailed sessions: session *starts* form a
  thinned Poisson process, each session emits a Pareto-distributed
  number of messages at exponential intra-session gaps, and the merged
  message stream is produced in timestamp order by a lazy heap merge.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from .profiles import RateProfile, ScaledProfile

__all__ = ["poisson_times", "session_times"]


def poisson_times(rng, profile: RateProfile,
                  horizon: Optional[float] = None) -> Iterator[float]:
    """Yield arrival timestamps (ns) of a non-homogeneous Poisson
    process with instantaneous rate ``profile.rate(t)``.

    ``horizon`` bounds the stream (exclusive); ``None`` streams forever
    (the driving source stops it). Lewis thinning: the candidate clock
    always advances at ``profile.peak()``, so a candidate costs two
    draws (``expovariate`` + ``random``) regardless of acceptance —
    consuming N arrivals leaves the stream at a position determined only
    by the profile and N.
    """
    peak = profile.peak()
    if peak <= 0:
        raise ValueError("profile peak rate must be positive")
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if horizon is not None and t >= horizon:
            return
        if rng.random() * peak < profile.rate(t):
            yield t


def session_times(rng, profile: RateProfile,
                  mean_messages: float = 20.0, shape: float = 1.5,
                  intra_gap_ns: float = 2000.0,
                  horizon: Optional[float] = None) -> Iterator[float]:
    """Yield message timestamps (ns) of a heavy-tailed session process.

    Sessions begin as a thinned Poisson process at rate
    ``profile.rate(t) / mean_messages`` (so the long-run *message* rate
    tracks the profile); each session issues ``K`` messages where ``K``
    is Pareto with the given ``shape`` and mean ``mean_messages``, with
    i.i.d. exponential gaps of mean ``intra_gap_ns`` between them. The
    merged stream is monotone: a heap of live sessions competes with the
    next session start, and only the globally earliest event is emitted.

    All draws come from the single ``rng`` stream; the interleaving of
    draws is a deterministic function of previously drawn values, so the
    sequence is reproducible like :func:`poisson_times`.
    """
    if mean_messages < 1:
        raise ValueError("mean_messages must be >= 1")
    if shape <= 1:
        raise ValueError("shape must exceed 1 for a finite mean")
    if intra_gap_ns <= 0:
        raise ValueError("intra_gap_ns must be positive")
    starts = poisson_times(rng, ScaledProfile(profile, 1.0 / mean_messages),
                           horizon)
    pareto_scale = mean_messages * (shape - 1.0) / shape
    gap_rate = 1.0 / intra_gap_ns
    # (next message time, birth serial, messages remaining after it).
    # The serial breaks timestamp ties deterministically (FIFO by birth).
    heap: List[Tuple[float, int, int]] = []
    serial = 0
    next_start = next(starts, None)
    while heap or next_start is not None:
        if next_start is not None and (not heap
                                       or next_start <= heap[0][0]):
            remaining = max(
                1, int(pareto_scale / (rng.random() ** (1.0 / shape))))
            heapq.heappush(heap, (next_start, serial, remaining - 1))
            serial += 1
            next_start = next(starts, None)
            continue
        t, born, remaining = heapq.heappop(heap)
        if horizon is not None and t >= horizon:
            # Sessions never straddle the horizon: drop the remainder.
            continue
        yield t
        if remaining > 0:
            heapq.heappush(
                heap, (t + rng.expovariate(gap_rate), born, remaining - 1))
