"""Time-varying offered-load profiles for open-loop demand.

A :class:`RateProfile` maps simulation time (ns) to an instantaneous
message rate (messages per ns). Profiles are pure functions — they draw
no randomness and hold no mutable state — so the same profile object can
back every flow of a tenant and every shard of a sharded run. The
stochastic part (turning a rate curve into arrival timestamps) lives in
:mod:`repro.demand.arrivals`.

Four kinds ship (see ``docs/WORKLOADS.md`` for the catalog):

==============  ======================================================
``steady``      constant rate (the open-loop baseline)
``diurnal``     sinusoidal day/night swing around a base rate
``flash_crowd`` ramp to a peak, hold, decay back (the overload stress)
``windows``     piecewise-constant rate over disjoint time windows
==============  ======================================================

Every profile round-trips through ``to_dict``/``from_dict`` using the
scenario schema's field names (rates in Mpps, times in µs), which is
what the versioned ``demand`` block of :mod:`repro.scenario` validates.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..sim.units import US

__all__ = ["MPPS_PER_NS", "RateProfile", "SteadyProfile", "DiurnalProfile",
           "FlashCrowdProfile", "WindowsProfile", "ScaledProfile",
           "PROFILE_KINDS", "profile_from_dict"]

#: 1 Mpps expressed in messages per nanosecond.
MPPS_PER_NS = 1e-3


class RateProfile:
    """Base class: instantaneous rate and a finite upper bound.

    ``peak()`` must bound ``rate(t)`` for every t — the thinning sampler
    in :mod:`repro.demand.arrivals` proposes candidates at the peak rate
    and accepts with probability ``rate(t) / peak``.
    """

    kind = ""

    def rate(self, t: float) -> float:
        """Messages per ns offered at simulation time ``t`` (ns)."""
        raise NotImplementedError

    def peak(self) -> float:
        """A tight upper bound on ``rate`` over all time, msgs/ns."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


class SteadyProfile(RateProfile):
    """Constant offered load."""

    kind = "steady"

    def __init__(self, rate_mpps: float):
        if rate_mpps <= 0:
            raise ValueError("rate_mpps must be positive")
        self.rate_mpps = float(rate_mpps)
        self._rate = self.rate_mpps * MPPS_PER_NS

    def rate(self, t: float) -> float:
        return self._rate

    def peak(self) -> float:
        return self._rate

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_mpps": self.rate_mpps}


class DiurnalProfile(RateProfile):
    """Sinusoidal swing around a base rate: the day/night load cycle
    compressed to simulation horizons.

    ``rate(t) = base * (1 + amplitude * sin(2π (t + phase) / period))``
    with ``0 <= amplitude < 1`` so the rate never reaches zero (a
    Poisson process at rate 0 would stall the thinning sampler's
    acceptance, not its candidate stream — still correct, just wasteful).
    """

    kind = "diurnal"

    def __init__(self, base_mpps: float, amplitude: float,
                 period_us: float, phase_us: float = 0.0):
        if base_mpps <= 0:
            raise ValueError("base_mpps must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self.base_mpps = float(base_mpps)
        self.amplitude = float(amplitude)
        self.period_us = float(period_us)
        self.phase_us = float(phase_us)
        self._base = self.base_mpps * MPPS_PER_NS
        self._omega = 2.0 * math.pi / (self.period_us * US)
        self._phase = self.phase_us * US

    def rate(self, t: float) -> float:
        return self._base * (1.0 + self.amplitude
                             * math.sin(self._omega * (t + self._phase)))

    def peak(self) -> float:
        return self._base * (1.0 + self.amplitude)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "base_mpps": self.base_mpps,
                "amplitude": self.amplitude, "period_us": self.period_us,
                "phase_us": self.phase_us}


class FlashCrowdProfile(RateProfile):
    """Base load, then a linear ramp to a peak, a hold, and a linear
    decay back — the canonical overload stress (§ capacity experiments).
    """

    kind = "flash_crowd"

    def __init__(self, base_mpps: float, peak_mpps: float, start_us: float,
                 ramp_us: float, hold_us: float, decay_us: float):
        if base_mpps <= 0:
            raise ValueError("base_mpps must be positive")
        if peak_mpps < base_mpps:
            raise ValueError("peak_mpps must be >= base_mpps")
        if ramp_us <= 0 or decay_us <= 0:
            raise ValueError("ramp_us and decay_us must be positive")
        if start_us < 0 or hold_us < 0:
            raise ValueError("start_us and hold_us must be non-negative")
        self.base_mpps = float(base_mpps)
        self.peak_mpps = float(peak_mpps)
        self.start_us = float(start_us)
        self.ramp_us = float(ramp_us)
        self.hold_us = float(hold_us)
        self.decay_us = float(decay_us)
        self._base = self.base_mpps * MPPS_PER_NS
        self._peak = self.peak_mpps * MPPS_PER_NS
        self._t0 = self.start_us * US
        self._t1 = self._t0 + self.ramp_us * US
        self._t2 = self._t1 + self.hold_us * US
        self._t3 = self._t2 + self.decay_us * US

    def rate(self, t: float) -> float:
        if t <= self._t0 or t >= self._t3:
            return self._base
        if t < self._t1:
            frac = (t - self._t0) / (self._t1 - self._t0)
            return self._base + (self._peak - self._base) * frac
        if t <= self._t2:
            return self._peak
        frac = (self._t3 - t) / (self._t3 - self._t2)
        return self._base + (self._peak - self._base) * frac

    def peak(self) -> float:
        return self._peak

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "base_mpps": self.base_mpps,
                "peak_mpps": self.peak_mpps, "start_us": self.start_us,
                "ramp_us": self.ramp_us, "hold_us": self.hold_us,
                "decay_us": self.decay_us}


class WindowsProfile(RateProfile):
    """Piecewise-constant rate over disjoint ``[start, end)`` windows;
    zero outside every window. Windows must not overlap (the scenario
    schema rejects overlapping ones path-addressed)."""

    kind = "windows"

    def __init__(self, windows: Sequence[Tuple[float, float, float]]):
        """``windows``: (start_us, end_us, rate_mpps) triples."""
        if not windows:
            raise ValueError("windows must be non-empty")
        ordered = sorted((float(s), float(e), float(r))
                         for s, e, r in windows)
        prev_end = None
        for start, end, rate in ordered:
            if end <= start:
                raise ValueError("window end must exceed its start")
            if rate < 0:
                raise ValueError("window rate must be non-negative")
            if prev_end is not None and start < prev_end:
                raise ValueError("windows must not overlap")
            prev_end = end
        if all(rate == 0.0 for _, _, rate in ordered):
            raise ValueError("at least one window needs a positive rate")
        self.windows: List[Tuple[float, float, float]] = ordered

    def rate(self, t: float) -> float:
        for start, end, rate in self.windows:
            if start * US <= t < end * US:
                return rate * MPPS_PER_NS
        return 0.0

    def peak(self) -> float:
        return max(rate for _, _, rate in self.windows) * MPPS_PER_NS

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "windows": [{"start_us": s, "end_us": e, "rate_mpps": r}
                            for s, e, r in self.windows]}


class ScaledProfile(RateProfile):
    """A profile scaled by a constant factor — how a tenant-aggregate
    rate becomes a per-flow rate (factor = 1 / flows)."""

    kind = "scaled"

    def __init__(self, inner: RateProfile, factor: float):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.inner = inner
        self.factor = float(factor)

    def rate(self, t: float) -> float:
        return self.inner.rate(t) * self.factor

    def peak(self) -> float:
        return self.inner.peak() * self.factor

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "factor": self.factor,
                "inner": self.inner.to_dict()}


PROFILE_KINDS: Tuple[str, ...] = ("steady", "diurnal", "flash_crowd",
                                  "windows")


def profile_from_dict(data: Mapping[str, Any]) -> RateProfile:
    """Build a profile from its schema dict (see the ``demand`` block of
    :mod:`repro.scenario.schema`; raises ``ValueError`` on bad shapes —
    the schema validates first and reports path-addressed errors)."""
    kind = data.get("kind")
    if kind == "steady":
        return SteadyProfile(data["rate_mpps"])
    if kind == "diurnal":
        return DiurnalProfile(data["base_mpps"], data["amplitude"],
                              data["period_us"],
                              data.get("phase_us", 0.0))
    if kind == "flash_crowd":
        return FlashCrowdProfile(data["base_mpps"], data["peak_mpps"],
                                 data["start_us"], data["ramp_us"],
                                 data["hold_us"], data["decay_us"])
    if kind == "windows":
        return WindowsProfile([(w["start_us"], w["end_us"], w["rate_mpps"])
                               for w in data["windows"]])
    raise ValueError(f"unknown profile kind {kind!r}; "
                     f"choose from {list(PROFILE_KINDS)}")
