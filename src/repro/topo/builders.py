"""Canonical topology builders: two-host, star, leaf-spine, fat-tree.

Every builder returns a plain :class:`~repro.topo.graph.Topology`; link
attributes default to the paper's testbed values (200 Gbps, 0.6 µs,
2 MB buffer, 300 KB ECN threshold) and can be overridden uniformly via
keyword arguments.

``two_host()`` reproduces the legacy :class:`repro.net.fabric.Testbed`
wiring exactly — one client, one server named ``"host"``, one ToR whose
server-facing egress is named ``"tor"``, a zero-delay client uplink so
the forward path is a single 0.6 µs contended hop and the reverse path a
single 0.6 µs fixed delay — and sets ``legacy_names`` so the compiled
fabric keeps the historical RNG stream and audit account names.
"""

from __future__ import annotations

from typing import Optional

from .graph import (DEFAULT_BUFFER, DEFAULT_DELAY, DEFAULT_ECN_THRESHOLD,
                    DEFAULT_RATE, HostSpec, LinkSpec, Topology)

__all__ = ["two_host", "star", "leaf_spine", "fat_tree"]


def _edge(a: str, b: str, rate: float, delay: float,
          ack_delay: Optional[float], buffer: int, ecn: int,
          name: str = "") -> LinkSpec:
    return LinkSpec(a, b, rate=rate, delay=delay, ack_delay=ack_delay,
                    buffer=buffer, ecn_threshold=ecn, name=name)


def two_host(rate: float = DEFAULT_RATE, delay: float = DEFAULT_DELAY,
             ack_delay: Optional[float] = None,
             buffer: int = DEFAULT_BUFFER,
             ecn_threshold: int = DEFAULT_ECN_THRESHOLD) -> Topology:
    """The paper's testbed: ``client -> tor -> host``.

    The client uplink carries zero delay (legacy senders inject straight
    into the ToR egress queue); the server link carries the full one-way
    delay and, when ``ack_delay`` is None, a symmetric reverse path —
    bit-compatible with ``Testbed`` under ``FabricConfig`` defaults.
    """
    return Topology(
        hosts=[HostSpec("client"), HostSpec("host", server=True)],
        switches=["tor"],
        links=[
            _edge("client", "tor", rate, 0.0, 0.0, buffer, ecn_threshold,
                  name="uplink"),
            _edge("tor", "host", rate, delay, ack_delay, buffer,
                  ecn_threshold, name="tor"),
        ],
        legacy_names=True,
    )


def star(n_clients: int, n_servers: int = 1,
         rate: float = DEFAULT_RATE, delay: float = DEFAULT_DELAY,
         ack_delay: Optional[float] = None, buffer: int = DEFAULT_BUFFER,
         ecn_threshold: int = DEFAULT_ECN_THRESHOLD) -> Topology:
    """``n_clients`` senders and ``n_servers`` receivers on one ToR —
    the incast/fan-in topology. Client uplinks are zero-delay (as in
    ``two_host``); each server link is a contended 0.6 µs egress."""
    if n_clients < 1 or n_servers < 1:
        raise ValueError("star() needs at least one client and one server")
    hosts = ([HostSpec(f"c{i}") for i in range(n_clients)]
             + [HostSpec(f"s{i}", server=True) for i in range(n_servers)])
    links = [_edge(f"c{i}", "tor", rate, 0.0, 0.0, buffer, ecn_threshold)
             for i in range(n_clients)]
    links += [_edge("tor", f"s{i}", rate, delay, ack_delay, buffer,
                    ecn_threshold) for i in range(n_servers)]
    return Topology(hosts=hosts, switches=["tor"], links=links)


def leaf_spine(leaves: int, spines: int, hosts_per_leaf: int,
               servers_per_leaf: int = 1,
               rate: float = DEFAULT_RATE, delay: float = DEFAULT_DELAY,
               ack_delay: Optional[float] = None,
               buffer: int = DEFAULT_BUFFER,
               ecn_threshold: int = DEFAULT_ECN_THRESHOLD,
               fabric_rate: Optional[float] = None) -> Topology:
    """A two-tier Clos: every leaf connects to every spine.

    The first ``servers_per_leaf`` hosts under each leaf are servers
    (``l<i>s<j>``), the rest clients (``l<i>c<j>``). ``fabric_rate``
    overrides the leaf-spine link rate (defaults to the edge rate).
    """
    if leaves < 1 or spines < 1:
        raise ValueError("leaf_spine() needs at least one leaf and spine")
    if not 0 <= servers_per_leaf <= hosts_per_leaf:
        raise ValueError("servers_per_leaf must be within hosts_per_leaf")
    up_rate = fabric_rate if fabric_rate is not None else rate
    hosts = []
    links = []
    switches = [f"leaf{i}" for i in range(leaves)]
    switches += [f"spine{j}" for j in range(spines)]
    for i in range(leaves):
        for j in range(hosts_per_leaf):
            if j < servers_per_leaf:
                name = f"l{i}s{j}"
                hosts.append(HostSpec(name, server=True))
                links.append(_edge(f"leaf{i}", name, rate, delay, ack_delay,
                                   buffer, ecn_threshold))
            else:
                name = f"l{i}c{j}"
                hosts.append(HostSpec(name))
                links.append(_edge(name, f"leaf{i}", rate, 0.0, 0.0, buffer,
                                   ecn_threshold))
    for i in range(leaves):
        for j in range(spines):
            links.append(_edge(f"leaf{i}", f"spine{j}", up_rate, delay,
                               ack_delay, buffer, ecn_threshold))
    return Topology(hosts=hosts, switches=switches, links=links)


def fat_tree(k: int, hosts_per_edge: int = 1, servers_per_pod: int = 1,
             rate: float = DEFAULT_RATE, delay: float = DEFAULT_DELAY,
             ack_delay: Optional[float] = None,
             buffer: int = DEFAULT_BUFFER,
             ecn_threshold: int = DEFAULT_ECN_THRESHOLD) -> Topology:
    """A k-ary fat tree (k even): k pods of k/2 edge + k/2 aggregation
    switches, (k/2)^2 core switches, ``hosts_per_edge`` hosts per edge
    switch. The first ``servers_per_pod`` hosts of each pod are servers.
    """
    if k < 2 or k % 2:
        raise ValueError("fat_tree() needs an even k >= 2")
    half = k // 2
    if not 0 <= servers_per_pod <= half * hosts_per_edge:
        raise ValueError("servers_per_pod exceeds hosts per pod")
    hosts = []
    links = []
    switches = []
    for c in range(half * half):
        switches.append(f"core{c}")
    for p in range(k):
        for e in range(half):
            switches.append(f"p{p}edge{e}")
        for a in range(half):
            switches.append(f"p{p}agg{a}")
    for p in range(k):
        served = 0
        for e in range(half):
            edge = f"p{p}edge{e}"
            for h in range(hosts_per_edge):
                idx = e * hosts_per_edge + h
                if served < servers_per_pod:
                    name = f"p{p}s{idx}"
                    hosts.append(HostSpec(name, server=True))
                    links.append(_edge(edge, name, rate, delay, ack_delay,
                                       buffer, ecn_threshold))
                    served += 1
                else:
                    name = f"p{p}c{idx}"
                    hosts.append(HostSpec(name))
                    links.append(_edge(name, edge, rate, 0.0, 0.0, buffer,
                                       ecn_threshold))
            for a in range(half):
                links.append(_edge(edge, f"p{p}agg{a}", rate, delay,
                                   ack_delay, buffer, ecn_threshold))
        for a in range(half):
            for c in range(half):
                links.append(_edge(f"p{p}agg{a}", f"core{a * half + c}",
                                   rate, delay, ack_delay, buffer,
                                   ecn_threshold))
    return Topology(hosts=hosts, switches=switches, links=links)
