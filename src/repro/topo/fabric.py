"""Compile a :class:`~repro.topo.graph.Topology` into a live fabric.

One :class:`Fabric` owns one :class:`~repro.sim.Simulator` and one
:class:`~repro.sim.RngRegistry` for the whole topology. Each *server*
host becomes a :class:`HostEndpoint` — a full receiver stack (``Host``
hardware model, I/O architecture, last-hop ``SwitchPort``) that presents
the legacy ``Testbed`` surface (``sim`` / ``rng`` / ``host`` / ``port`` /
``flows`` / ``install_io_arch`` / ``add_flow`` / ``ack``), so measurement
windows, conservation ledgers, and fault controllers work per host
without modification. Each switch becomes a :class:`SwitchNode` with one
``SwitchPort`` per *used* egress; interior (switch-to-switch) hops count
forwarded packets so ``switch.<name>.port.<i>`` conservation accounts
close (see :func:`repro.audit.wiring.build_fabric_ledger`).

Determinism:

- RNG streams are namespaced ``"<host>.<stream>"`` via :class:`HostRng`,
  so adding a host never perturbs another host's draws. Topologies built
  by :func:`repro.topo.builders.two_host` keep the legacy *unprefixed*
  names — that, plus identical construction order (Simulator, registry,
  Host, then the single ToR port), is what makes the compiled two-host
  fabric bit-identical to ``repro.net.fabric.Testbed``.
- Equal-cost multipath ties are broken by the fabric's own flow
  registration counter (``index % len(candidates)`` over name-sorted
  candidates), never by global flow ids, which depend on what ran
  earlier in the process.

Event domains and shard scope (:mod:`repro.shard`):

Every scheduling action is charged to the *event domain* of the
partition atom (a switch plus its attached hosts) whose state it
touches: ``domain == index of the switch in topology.switches``.
Construction sites are bracketed with :meth:`Fabric.in_domain`; the two
genuinely cross-domain runtime callbacks — interior switch-to-switch
delivery and ACK execution at the client — switch domains explicitly at
the top (see ``repro.sim.engine``, "Event domains"). On a single-switch
topology everything stays in domain 0 and the kernel's historical
single-counter fast path is bit-identical.

A fabric built with ``scope={switch names}`` materialises live
components only for the scoped atoms (their endpoints, ports, senders)
while still replicating the *entire* deterministic build control flow —
flow registration ordinals, ECMP route draws, ACK-delay sums, per-host
RNG stream draws — so each shard's per-domain sequence counters advance
exactly as the single-kernel run's do. Boundary (cut) links serialise
packets into cross-shard channel messages carrying their full
``(time, composite seq)`` calendar key; see :meth:`Fabric.attach_channels`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterable, List, Optional, Set,
                    Tuple)

from ..hw import Host, HostConfig
from ..net.dctcp import DctcpConfig, DctcpSender
from ..net.link import SwitchPort
from ..net.packet import Flow, Packet
from ..sim import RngRegistry, Simulator
from ..sim.stats import Counter
from .graph import LinkSpec, Topology

__all__ = ["Fabric", "HostEndpoint", "HostRng", "SwitchNode", "port_plan"]


def port_plan(topology: Topology,
              tables: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None
              ) -> Dict[Tuple[str, str], LinkSpec]:
    """The deterministic egress-port plan of a topology: one ``(switch,
    neighbour)`` entry per direction actually used by some
    client->server route, in creation order (servers in topology order,
    switches in topology order, candidates sorted). Insertion order
    fixes every switch's audit port numbering (``switch.<sw>.port.<i>``).
    ``Fabric._build_ports`` realises this plan; the shard channel layer
    (:mod:`repro.shard.channel`) replays it to name a remote port's
    audit account without holding a fabric."""
    if tables is None:
        tables = {spec.name: topology.next_hops_toward(spec.name)
                  for spec in topology.server_hosts}
    plan: Dict[Tuple[str, str], LinkSpec] = {}
    for spec in topology.server_hosts:
        attach_sw, link = topology.attachment(spec.name)
        plan.setdefault((attach_sw, spec.name), link)
        table = tables[spec.name]
        for sw in topology.switches:
            for nbr in table.get(sw, ()):
                plan.setdefault((sw, nbr), topology.link_between(sw, nbr))
    return plan


class HostRng:
    """A per-host view of the fabric's shared :class:`RngRegistry`: every
    stream name is prefixed with ``"<host>."``, so one host's draw order
    is independent of every other host's."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: RngRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    @property
    def root_seed(self) -> int:
        return self._registry.root_seed

    def stream(self, name: str):
        return self._registry.stream(self.prefix + name)

    def spawn(self, name: str) -> RngRegistry:
        return self._registry.spawn(self.prefix + name)


class SwitchNode:
    """One switch of a compiled fabric: its used egress ports (creation
    order = audit port index) and, for interior ports, the forwarded-
    packet counters the conservation accounts balance against."""

    __slots__ = ("name", "ports", "forwarded")

    def __init__(self, name: str):
        self.name = name
        #: neighbor node name -> egress SwitchPort, in creation order.
        self.ports: Dict[str, SwitchPort] = {}
        #: neighbor switch name -> Counter of packets this egress handed
        #: to that switch's ingress dispatch (interior ports only).
        self.forwarded: Dict[str, Counter] = {}

    def port_index(self, neighbor: str) -> int:
        return list(self.ports).index(neighbor)


class HostEndpoint:
    """One server host, presenting the legacy ``Testbed`` surface."""

    def __init__(self, fabric: "Fabric", name: str, prefix: str,
                 host_config: Optional[HostConfig]):
        self.fabric = fabric
        self.name = name
        #: RNG / audit-account name prefix ("" in legacy two-host mode).
        self.prefix = prefix
        self.sim = fabric.sim
        self.rng = (fabric.rng if prefix == ""
                    else HostRng(fabric.rng, prefix))
        self.host = Host(self.sim, host_config, name=name, rng=self.rng)
        #: The last-hop egress port toward this host (set at port wiring).
        self.port: Optional[SwitchPort] = None
        #: Flows terminating at this host, in registration order.
        self.flows: List[Flow] = []
        self.io_arch = None
        #: The open MeasurementWindow, if any (see workloads.measure).
        self.active_window = None

    # -- legacy Testbed surface ----------------------------------------
    @property
    def senders(self) -> Dict[int, DctcpSender]:
        """The fabric-wide sender table (senders live host-side on the
        *clients*; the shared dict keeps crash semantics identical to
        the legacy testbed's)."""
        return self.fabric.senders

    def install_io_arch(self, io_arch) -> None:
        """Attach the receive-side I/O architecture to this host's NIC."""
        self.io_arch = io_arch
        io_arch.ack = self.ack
        self.host.nic.install_handler(io_arch)

    def add_flow(self, flow: Flow, src: Optional[str] = None,
                 late_ok: bool = False) -> DctcpSender:
        """Register ``flow`` from client ``src`` (default: the first
        client host) toward this host."""
        return self.fabric.add_flow(flow, src=src, dst=self.name,
                                    late_ok=late_ok)

    def _deliver(self, packet: Packet) -> None:
        packet.arrival_time = self.sim.now
        self.host.nic.receive(packet)

    def ack(self, packet: Packet, extra_mark: bool = False) -> None:
        """ACK an accepted packet along the flow's reverse path (the sum
        of per-link ``ack_delay`` values, so asymmetric topologies are
        expressible; symmetric defaults reproduce the legacy constant)."""
        self.fabric.ack(packet, extra_mark)

    def run(self, until: float) -> None:
        self.sim.run(until=until)


def _cut_deliver(packet) -> None:  # pragma: no cover - contract guard
    raise RuntimeError(
        "boundary-link local delivery invoked: a cut egress must ship "
        "its packets over the shard channel (attach_channels not called?)")


#: Fields a boundary-crossing packet carries by value. ``flow`` travels
#: as the fabric registration *ordinal* (process-global flow ids never
#: cross shard boundaries); ``size`` is derived from the payload.
_SNAP_FIELDS = ("seq", "payload", "message_id", "last_in_message",
                "ecn_marked", "send_time", "first_send_time",
                "arrival_time", "delivered_time", "retransmitted")


class Fabric:
    """A compiled topology: hosts, switches, ports, routes, transports."""

    def __init__(self, topology: Topology,
                 host_config: Optional[HostConfig] = None,
                 host_configs: Optional[Dict[str, HostConfig]] = None,
                 dctcp_config: Optional[DctcpConfig] = None,
                 seed: int = 0,
                 scope: Optional[Iterable[str]] = None):
        self.topology = topology
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.dctcp_config = dctcp_config or DctcpConfig()
        self.senders: Dict[int, DctcpSender] = {}
        self.endpoints: Dict[str, HostEndpoint] = {}
        #: Switch name -> event domain (its index in topology.switches);
        #: identical in every shard and in the single kernel.
        self._domain_of_switch: Dict[str, int] = {
            name: i for i, name in enumerate(topology.switches)}
        self._switch_set: Set[str] = set(topology.switches)
        #: Shard scope: the set of locally-materialised switches, or
        #: None for the full (single-kernel) build.
        self.scope: Optional[frozenset] = (
            None if scope is None else frozenset(scope))
        if self.scope is not None:
            unknown = self.scope - self._switch_set
            if unknown:
                raise ValueError(
                    f"scope names unknown switches: {sorted(unknown)}")
            if not self.scope:
                raise ValueError("scope must name at least one switch")
        self.switches: Dict[str, SwitchNode] = {
            name: SwitchNode(name) for name in topology.switches
            if self.is_local_switch(name)}
        #: (flow_id, switch) -> egress port the switch forwards on.
        self._next_port: Dict[Tuple[int, str], SwitchPort] = {}
        #: flow_id -> total reverse-path (ACK) delay, ns.
        self._ack_delay: Dict[int, float] = {}
        #: flow_id -> source host name (diagnostics / experiments).
        self.flow_sources: Dict[int, str] = {}
        self._flow_seq = 0
        #: Registration ordinal -> Flow, and the inverse. Channel
        #: messages address flows by ordinal: it is the only flow
        #: identity every shard derives identically.
        self.flows_by_ordinal: List[Flow] = []
        self.flow_ordinal: Dict[int, int] = {}
        #: flow_id -> cross-domain ACK executor (None when client and
        #: server share a domain and the legacy direct path applies).
        self._ack_execs: Dict[int, Optional[Callable]] = {}
        self._ack_exec_cache: Dict[int, Callable] = {}
        #: Cross-shard ACK channel emitter, installed by attach_channels.
        self._ack_emit: Optional[Callable] = None
        #: Cut-link halves (scoped fabrics only): locally-owned egresses
        #: whose delivery runs in a peer shard, and locally-owned ingress
        #: dispatches fed by a peer shard's egress.
        self._cut_egress: List[Tuple[str, str, SwitchPort]] = []
        self._cut_ingress: Dict[Tuple[str, str], Callable] = {}
        self._cut_ingress_counters: Dict[Tuple[str, str],
                                         Tuple[str, Counter]] = {}
        #: Switch -> its egress neighbours in port-creation order, for
        #: *every* switch (scoped builds replay the full plan), so any
        #: shard can name a remote switch's audit port index.
        self._port_order: Dict[str, List[str]] = {}

        servers = topology.server_hosts
        if not servers:
            raise ValueError("topology has no server hosts")
        #: Legacy-naming mode: unprefixed RNG streams and audit accounts
        #: (only a single-server ``two_host()`` topology qualifies).
        self.legacy = topology.legacy_names and len(servers) == 1
        # Hosts first, then ports — the legacy Testbed construction order,
        # which fixes process-creation order inside the kernel.
        for spec in servers:
            if not self.is_local_host(spec.name):
                continue
            prefix = "" if self.legacy else f"{spec.name}."
            with self.host_domain(spec.name):
                self.endpoints[spec.name] = HostEndpoint(
                    self, spec.name, prefix,
                    (host_configs or {}).get(spec.name, host_config))
        #: Per-destination next-hop candidate tables (all servers, local
        #: or not: routing and the port plan are global facts).
        self._tables: Dict[str, Dict[str, Tuple[str, ...]]] = {
            spec.name: topology.next_hops_toward(spec.name)
            for spec in servers}
        self._build_ports()

    # ------------------------------------------------------------------
    # Shard scope / event domains
    # ------------------------------------------------------------------
    def is_local_switch(self, switch: str) -> bool:
        return self.scope is None or switch in self.scope

    def is_local_host(self, host: str) -> bool:
        if self.scope is None:
            return True
        attach_sw, _link = self.topology.attachment(host)
        return attach_sw in self.scope

    def domain_of_host(self, host: str) -> int:
        attach_sw, _link = self.topology.attachment(host)
        return self._domain_of_switch[attach_sw]

    @contextmanager
    def in_domain(self, domain: int):
        """Charge every scheduling action in the block to ``domain``
        (build-time bracketing; no-op when already active)."""
        sim = self.sim
        prev = sim.domain
        sim.set_domain(domain)
        try:
            yield
        finally:
            sim.set_domain(prev)

    def host_domain(self, host: str):
        return self.in_domain(self.domain_of_host(host))

    def switch_domain(self, switch: str):
        return self.in_domain(self._domain_of_switch[switch])

    def host_rng(self, host: str) -> Any:
        """The RNG namespace of ``host``, materialised or not — scoped
        builds replicate remote hosts' draws through this (stream seeds
        are pure functions of (root seed, name), never of locality)."""
        if self.legacy:
            return self.rng
        return HostRng(self.rng, f"{host}.")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_ports(self) -> None:
        """Create one ``SwitchPort`` per egress direction actually used
        by some client->server route, in deterministic order (servers in
        topology order, switches in topology order, candidates sorted).

        The plan is always computed for the *full* topology; a scoped
        build materialises only ports owned by scoped switches, records
        every switch's port order for cross-shard audit naming, and
        splits cut links into an egress half (local port, channel
        emitter) and an ingress half (forwarded counter + dispatch)."""
        topo = self.topology
        plan = port_plan(topo, self._tables)
        for (sw, nbr), link in plan.items():
            self._port_order.setdefault(sw, []).append(nbr)
            nbr_is_switch = nbr in self._switch_set
            if not self.is_local_switch(sw):
                # Peer-owned egress; if it feeds a local switch, build
                # the ingress half (the forwarded counter lives with the
                # switch that *receives* the packets).
                if nbr_is_switch and self.is_local_switch(nbr):
                    counter = Counter(f"{link.name}:{sw}>{nbr}.forwarded")
                    self._cut_ingress[(sw, nbr)] = \
                        self._make_forwarder(counter, nbr)
                    self._cut_ingress_counters[(sw, nbr)] = (
                        f"{link.name}:{sw}>{nbr}", counter)
                continue
            node = self.switches[sw]
            cut = nbr_is_switch and not self.is_local_switch(nbr)
            if nbr in self.endpoints:
                endpoint: Optional[HostEndpoint] = self.endpoints[nbr]
                deliver: Callable = endpoint._deliver
                name = link.name
            elif cut:
                endpoint = None
                deliver = _cut_deliver
                name = f"{link.name}:{sw}>{nbr}"
            else:
                endpoint = None
                counter = Counter(f"{link.name}:{sw}>{nbr}.forwarded")
                node.forwarded[nbr] = counter
                deliver = self._make_forwarder(counter, nbr)
                name = f"{link.name}:{sw}>{nbr}"
            with self.switch_domain(sw):
                port = SwitchPort(
                    self.sim, rate=link.rate, propagation=link.delay,
                    deliver=deliver, buffer_bytes=link.buffer,
                    ecn_threshold=link.ecn_threshold, name=name)
            node.ports[nbr] = port
            if endpoint is not None:
                endpoint.port = port
            if cut:
                self._cut_egress.append((sw, nbr, port))

    def _make_forwarder(self, counter: Counter,
                        next_switch: str) -> Callable[[Packet], None]:
        """Ingress dispatch at ``next_switch``: enter its event domain,
        count the handoff, then send on the flow's pre-chosen egress out
        of that switch. The domain switch charges the enqueue (and any
        egress wake-up) to the switch that owns the queue, which is what
        lets a peer shard replay this callback identically."""
        next_port = self._next_port
        sim = self.sim
        domain = self._domain_of_switch[next_switch]

        def deliver(packet: Packet) -> None:
            sim.set_domain(domain)
            counter.add(1)
            next_port[(packet.flow.flow_id, next_switch)].send(packet)

        return deliver

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow, src: Optional[str] = None,
                 dst: Optional[str] = None, late_ok: bool = False
                 ) -> Optional[DctcpSender]:
        """Create the sender-side transport for ``flow`` from client
        ``src`` to server ``dst``, pin its route, and register it with
        the destination's I/O architecture.

        On a scoped fabric the call must still be made for *every* flow
        (the registration ordinal, ECMP draw, and ACK delay are global
        bookkeeping every shard replicates); live pieces are built only
        for local atoms, and ``None`` is returned when the client is
        remote."""
        topo = self.topology
        if dst is None:
            if self.scope is not None:
                raise ValueError(
                    "scoped fabrics need an explicit dst (the default "
                    "'first endpoint' differs per shard)")
            dst = next(iter(self.endpoints))
        endpoint = self.endpoints.get(dst)
        if self.scope is None and endpoint is None:
            raise KeyError(dst)
        if endpoint is not None and endpoint.io_arch is None:
            raise RuntimeError("install_io_arch() before add_flow()")
        if src is None:
            clients = topo.client_hosts
            src = clients[0].name if clients else None
        if src is None or src not in topo.hosts:
            raise ValueError(f"unknown source host {src!r}")
        window = endpoint.active_window if endpoint is not None else None
        if window is not None and not late_ok:
            raise RuntimeError(
                f"add_flow({flow.name!r}) on {dst!r} after measurement "
                f"started at t={window.t_start:g} ns: the open "
                "MeasurementWindow would silently exclude the flow from "
                "its metrics. Add flows before the window opens, or pass "
                "late_ok=True and call window.note_new_flow(flow) after "
                "registration.")

        index = self._flow_seq
        self._flow_seq += 1
        src_sw, src_link = topo.attachment(src)
        dst_sw, dst_link = topo.attachment(dst)
        table = self._tables[dst]
        if src_sw not in table:
            raise ValueError(f"no route from {src!r} to {dst!r}")
        path_links: List[LinkSpec] = [src_link]
        sw = src_sw
        while sw != dst_sw:
            candidates = table[sw]
            nxt = candidates[index % len(candidates)]
            if sw in self.switches:
                self._next_port[(flow.flow_id, sw)] = \
                    self.switches[sw].ports[nxt]
            path_links.append(topo.link_between(sw, nxt))
            sw = nxt
        if dst_sw in self.switches:
            self._next_port[(flow.flow_id, dst_sw)] = \
                self.switches[dst_sw].ports[dst]
        path_links.append(dst_link)

        self._ack_delay[flow.flow_id] = sum(
            link.reverse_delay for link in path_links)
        self.flow_sources[flow.flow_id] = src
        self.flow_ordinal[flow.flow_id] = len(self.flows_by_ordinal)
        self.flows_by_ordinal.append(flow)
        src_domain = self._domain_of_switch[src_sw]
        dst_domain = self._domain_of_switch[dst_sw]
        # Same-domain flows keep the legacy direct ACK path (the domain
        # switch would be a no-op); cross-domain flows execute ACKs
        # under the client's domain.
        self._ack_execs[flow.flow_id] = (
            None if src_domain == dst_domain
            else self._ack_exec_for(src_domain))

        sender: Optional[DctcpSender] = None
        if self.is_local_host(src):
            entry_port = self._next_port[(flow.flow_id, src_sw)]
            uplink = src_link.delay
            if uplink == 0.0:
                egress = entry_port.send
            else:
                egress = self._make_uplink(uplink, entry_port)
            with self.in_domain(src_domain):
                sender = DctcpSender(self.sim, flow, egress,
                                     self.dctcp_config)
            self.senders[flow.flow_id] = sender
        if endpoint is not None:
            endpoint.flows.append(flow)
            with self.in_domain(dst_domain):
                endpoint.io_arch.register_flow(flow)
            if window is not None:
                window.note_new_flow(flow)
        return sender

    def _make_uplink(self, delay: float,
                     entry_port: SwitchPort) -> Callable[[Packet], None]:
        """A client uplink with propagation delay but no serialisation
        (uplinks are uncontended; queueing happens at switch egresses)."""
        sim = self.sim
        send = entry_port.send

        def egress(packet: Packet) -> None:
            sim.call_later(delay, send, packet)

        return egress

    def _ack_exec_for(self, domain: int) -> Callable:
        """The shared per-domain ACK executor: enters the client's event
        domain, then delivers the ACK to the sender captured at schedule
        time (preserving crashed-sender semantics: a sender that was
        live when the ACK was scheduled still hears it)."""
        exec_ = self._ack_exec_cache.get(domain)
        if exec_ is None:
            sim = self.sim

            def exec_(sender: DctcpSender, seq: int, marked: bool) -> None:
                sim.set_domain(domain)
                sender.on_ack(seq, marked)

            self._ack_exec_cache[domain] = exec_
        return exec_

    # ------------------------------------------------------------------
    # Reverse path
    # ------------------------------------------------------------------
    def ack(self, packet: Packet, extra_mark: bool = False) -> None:
        fid = packet.flow.flow_id
        sender = self.senders.get(fid)
        marked = packet.ecn_marked or extra_mark
        if sender is not None:
            exec_ = self._ack_execs[fid]
            if exec_ is None:
                self.sim.call_later(self._ack_delay[fid],
                                    sender.on_ack, packet.seq, marked)
            else:
                self.sim.call_later(self._ack_delay[fid],
                                    exec_, sender, packet.seq, marked)
            return
        # Scoped fabric, client in a peer shard: consume the one
        # sequence number the single-kernel call_later would have and
        # ship the full calendar key over the ACK channel. (An unscoped
        # fabric lands here only for crashed flows, whose ACKs drop.)
        if self._ack_emit is not None:
            ordinal = self.flow_ordinal.get(fid)
            if ordinal is not None and \
                    not self.is_local_host(self.flow_sources[fid]):
                when, seq = self.sim.reserve_key(self._ack_delay[fid])
                self._ack_emit(ordinal, when, seq, packet.seq, marked)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Cross-shard channels (repro.shard)
    # ------------------------------------------------------------------
    def attach_channels(self, packet_emit: Callable,
                        ack_emit: Callable) -> None:
        """Install the shard kernel's channel emitters on a scoped
        fabric. ``packet_emit(src_sw, dst_sw, when, seq, snap)`` ships a
        boundary-crossing packet; ``ack_emit(ordinal, when, seq,
        pkt_seq, marked)`` ships an ACK whose client is remote. Both
        carry the exact ``(time, composite seq)`` calendar key consumed
        locally, so the peer inserts the entry verbatim."""
        if self.scope is None:
            raise RuntimeError("attach_channels() requires a scoped fabric")
        self._ack_emit = ack_emit
        for src_sw, dst_sw, port in self._cut_egress:
            port._wire_send = self._make_cut_emitter(
                port, src_sw, dst_sw, packet_emit)

    def _make_cut_emitter(self, port: SwitchPort, src_sw: str,
                          dst_sw: str, emit: Callable) -> Callable:
        """The boundary replacement for ``SwitchPort._wire_schedule``:
        schedule the *local* half of the wire arrival (the in-flight
        decrement) — consuming exactly the one sequence number the
        single-kernel arrival would — and ship the entry's key plus a
        packet snapshot to the peer, which replays the delivery half
        under the identical key."""
        sim = self.sim
        snapshot = self.snapshot_packet

        def wire_send(packet: Packet) -> None:
            entry = sim.call_later(port.propagation,
                                   port._wire_depart, packet)
            emit(src_sw, dst_sw, entry[0], entry[1], snapshot(packet))

        return wire_send

    def snapshot_packet(self, packet: Packet) -> tuple:
        """Serialise a packet by value for the cross-shard channel."""
        return (self.flow_ordinal[packet.flow.flow_id],
                ) + tuple(getattr(packet, f) for f in _SNAP_FIELDS)

    def restore_packet(self, snap: tuple) -> Packet:
        """Rebuild a channel packet against this shard's own Flow
        object for the ordinal (field-for-field identical to the copy
        the single-kernel run would be holding)."""
        flow = self.flows_by_ordinal[snap[0]]
        packet = Packet(flow, snap[1], snap[2], message_id=snap[3],
                        last_in_message=snap[4])
        (packet.ecn_marked, packet.send_time, packet.first_send_time,
         packet.arrival_time, packet.delivered_time,
         packet.retransmitted) = snap[5:]
        return packet

    def inject_packet(self, src_sw: str, dst_sw: str, when: float,
                      seq: int, snap: tuple) -> None:
        """Insert a peer shard's boundary-link delivery verbatim."""
        deliver = self._cut_ingress[(src_sw, dst_sw)]
        self.sim.post_keyed(when, seq, deliver, self.restore_packet(snap))

    def inject_ack(self, ordinal: int, when: float, seq: int,
                   pkt_seq: int, marked: bool) -> None:
        """Insert a peer shard's ACK delivery verbatim (the client of
        flow ``ordinal`` lives here)."""
        flow = self.flows_by_ordinal[ordinal]
        sender = self.senders.get(flow.flow_id)
        if sender is None:
            # A crashed (apps-fault) flow: its sender was popped. Under
            # sharding the crash constraint keeps client and server in
            # one shard, so a cross-shard ACK for a crashed flow cannot
            # normally occur; dropping it mirrors the single kernel's
            # senders.get miss.
            return
        exec_ = self._ack_execs[flow.flow_id]
        assert exec_ is not None  # cross-shard implies cross-domain
        self.sim.post_keyed(when, seq, exec_, sender, pkt_seq, marked)

    # ------------------------------------------------------------------
    def interior_ports(self) -> List[Tuple[str, int, SwitchPort, Counter]]:
        """(switch, port index, port, forwarded counter) for every
        switch-to-switch egress whose both ends are local, in creation
        order — the audit hook."""
        out = []
        for node in self.switches.values():
            for i, (nbr, port) in enumerate(node.ports.items()):
                if nbr in node.forwarded:
                    out.append((node.name, i, port, node.forwarded[nbr]))
        return out

    def cut_egresses(self) -> List[Tuple[str, int, SwitchPort, str]]:
        """(switch, port index, port, peer switch) for every locally-
        owned boundary egress (scoped fabrics only). The index matches
        the single-kernel ``switch.<sw>.port.<i>`` audit naming."""
        out = []
        for sw, nbr, port in self._cut_egress:
            out.append((sw, self.switches[sw].port_index(nbr), port, nbr))
        return out

    def cut_ingresses(self) -> List[Tuple[str, int, str, Counter]]:
        """(peer switch, peer port index, peer switch name, forwarded
        counter) for every locally-owned boundary ingress half. The
        port index is computed from the replayed full port plan, so it
        names the same ``switch.<peer>.port.<i>`` account the peer (and
        the single kernel) uses."""
        out = []
        for (src_sw, dst_sw), (_name, counter) in \
                sorted(self._cut_ingress_counters.items()):
            index = self._port_order[src_sw].index(dst_sw)
            out.append((src_sw, index, dst_sw, counter))
        return out
