"""Compile a :class:`~repro.topo.graph.Topology` into a live fabric.

One :class:`Fabric` owns one :class:`~repro.sim.Simulator` and one
:class:`~repro.sim.RngRegistry` for the whole topology. Each *server*
host becomes a :class:`HostEndpoint` — a full receiver stack (``Host``
hardware model, I/O architecture, last-hop ``SwitchPort``) that presents
the legacy ``Testbed`` surface (``sim`` / ``rng`` / ``host`` / ``port`` /
``flows`` / ``install_io_arch`` / ``add_flow`` / ``ack``), so measurement
windows, conservation ledgers, and fault controllers work per host
without modification. Each switch becomes a :class:`SwitchNode` with one
``SwitchPort`` per *used* egress; interior (switch-to-switch) hops count
forwarded packets so ``switch.<name>.port.<i>`` conservation accounts
close (see :func:`repro.audit.wiring.build_fabric_ledger`).

Determinism:

- RNG streams are namespaced ``"<host>.<stream>"`` via :class:`HostRng`,
  so adding a host never perturbs another host's draws. Topologies built
  by :func:`repro.topo.builders.two_host` keep the legacy *unprefixed*
  names — that, plus identical construction order (Simulator, registry,
  Host, then the single ToR port), is what makes the compiled two-host
  fabric bit-identical to ``repro.net.fabric.Testbed``.
- Equal-cost multipath ties are broken by the fabric's own flow
  registration counter (``index % len(candidates)`` over name-sorted
  candidates), never by global flow ids, which depend on what ran
  earlier in the process.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..hw import Host, HostConfig
from ..net.dctcp import DctcpConfig, DctcpSender
from ..net.link import SwitchPort
from ..net.packet import Flow, Packet
from ..sim import RngRegistry, Simulator
from ..sim.stats import Counter
from .graph import LinkSpec, Topology

__all__ = ["Fabric", "HostEndpoint", "HostRng", "SwitchNode"]


class HostRng:
    """A per-host view of the fabric's shared :class:`RngRegistry`: every
    stream name is prefixed with ``"<host>."``, so one host's draw order
    is independent of every other host's."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: RngRegistry, prefix: str):
        self._registry = registry
        self.prefix = prefix

    @property
    def root_seed(self) -> int:
        return self._registry.root_seed

    def stream(self, name: str):
        return self._registry.stream(self.prefix + name)

    def spawn(self, name: str) -> RngRegistry:
        return self._registry.spawn(self.prefix + name)


class SwitchNode:
    """One switch of a compiled fabric: its used egress ports (creation
    order = audit port index) and, for interior ports, the forwarded-
    packet counters the conservation accounts balance against."""

    __slots__ = ("name", "ports", "forwarded")

    def __init__(self, name: str):
        self.name = name
        #: neighbor node name -> egress SwitchPort, in creation order.
        self.ports: Dict[str, SwitchPort] = {}
        #: neighbor switch name -> Counter of packets this egress handed
        #: to that switch's ingress dispatch (interior ports only).
        self.forwarded: Dict[str, Counter] = {}

    def port_index(self, neighbor: str) -> int:
        return list(self.ports).index(neighbor)


class HostEndpoint:
    """One server host, presenting the legacy ``Testbed`` surface."""

    def __init__(self, fabric: "Fabric", name: str, prefix: str,
                 host_config: Optional[HostConfig]):
        self.fabric = fabric
        self.name = name
        #: RNG / audit-account name prefix ("" in legacy two-host mode).
        self.prefix = prefix
        self.sim = fabric.sim
        self.rng = (fabric.rng if prefix == ""
                    else HostRng(fabric.rng, prefix))
        self.host = Host(self.sim, host_config, name=name, rng=self.rng)
        #: The last-hop egress port toward this host (set at port wiring).
        self.port: Optional[SwitchPort] = None
        #: Flows terminating at this host, in registration order.
        self.flows: List[Flow] = []
        self.io_arch = None
        #: The open MeasurementWindow, if any (see workloads.measure).
        self.active_window = None

    # -- legacy Testbed surface ----------------------------------------
    @property
    def senders(self) -> Dict[int, DctcpSender]:
        """The fabric-wide sender table (senders live host-side on the
        *clients*; the shared dict keeps crash semantics identical to
        the legacy testbed's)."""
        return self.fabric.senders

    def install_io_arch(self, io_arch) -> None:
        """Attach the receive-side I/O architecture to this host's NIC."""
        self.io_arch = io_arch
        io_arch.ack = self.ack
        self.host.nic.install_handler(io_arch)

    def add_flow(self, flow: Flow, src: Optional[str] = None,
                 late_ok: bool = False) -> DctcpSender:
        """Register ``flow`` from client ``src`` (default: the first
        client host) toward this host."""
        return self.fabric.add_flow(flow, src=src, dst=self.name,
                                    late_ok=late_ok)

    def _deliver(self, packet: Packet) -> None:
        packet.arrival_time = self.sim.now
        self.host.nic.receive(packet)

    def ack(self, packet: Packet, extra_mark: bool = False) -> None:
        """ACK an accepted packet along the flow's reverse path (the sum
        of per-link ``ack_delay`` values, so asymmetric topologies are
        expressible; symmetric defaults reproduce the legacy constant)."""
        self.fabric.ack(packet, extra_mark)

    def run(self, until: float) -> None:
        self.sim.run(until=until)


class Fabric:
    """A compiled topology: hosts, switches, ports, routes, transports."""

    def __init__(self, topology: Topology,
                 host_config: Optional[HostConfig] = None,
                 host_configs: Optional[Dict[str, HostConfig]] = None,
                 dctcp_config: Optional[DctcpConfig] = None,
                 seed: int = 0):
        self.topology = topology
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.dctcp_config = dctcp_config or DctcpConfig()
        self.senders: Dict[int, DctcpSender] = {}
        self.endpoints: Dict[str, HostEndpoint] = {}
        self.switches: Dict[str, SwitchNode] = {
            name: SwitchNode(name) for name in topology.switches}
        #: (flow_id, switch) -> egress port the switch forwards on.
        self._next_port: Dict[Tuple[int, str], SwitchPort] = {}
        #: flow_id -> total reverse-path (ACK) delay, ns.
        self._ack_delay: Dict[int, float] = {}
        #: flow_id -> source host name (diagnostics / experiments).
        self.flow_sources: Dict[int, str] = {}
        self._flow_seq = 0

        servers = topology.server_hosts
        if not servers:
            raise ValueError("topology has no server hosts")
        #: Legacy-naming mode: unprefixed RNG streams and audit accounts
        #: (only a single-server ``two_host()`` topology qualifies).
        self.legacy = topology.legacy_names and len(servers) == 1
        # Hosts first, then ports — the legacy Testbed construction order,
        # which fixes process-creation order inside the kernel.
        for spec in servers:
            prefix = "" if self.legacy else f"{spec.name}."
            self.endpoints[spec.name] = HostEndpoint(
                self, spec.name, prefix,
                (host_configs or {}).get(spec.name, host_config))
        #: Per-destination next-hop candidate tables.
        self._tables: Dict[str, Dict[str, Tuple[str, ...]]] = {
            spec.name: topology.next_hops_toward(spec.name)
            for spec in servers}
        self._build_ports()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_ports(self) -> None:
        """Create one ``SwitchPort`` per egress direction actually used
        by some client->server route, in deterministic order (servers in
        topology order, switches in topology order, candidates sorted)."""
        topo = self.topology
        plan: Dict[Tuple[str, str], LinkSpec] = {}
        for spec in topo.server_hosts:
            attach_sw, link = topo.attachment(spec.name)
            plan.setdefault((attach_sw, spec.name), link)
            table = self._tables[spec.name]
            for sw in topo.switches:
                for nbr in table.get(sw, ()):
                    plan.setdefault((sw, nbr), topo.link_between(sw, nbr))
        for (sw, nbr), link in plan.items():
            node = self.switches[sw]
            if nbr in self.endpoints:
                endpoint = self.endpoints[nbr]
                deliver = endpoint._deliver
                name = link.name
            else:
                counter = Counter(f"{link.name}:{sw}>{nbr}.forwarded")
                node.forwarded[nbr] = counter
                deliver = self._make_forwarder(counter, nbr)
                name = f"{link.name}:{sw}>{nbr}"
            port = SwitchPort(
                self.sim, rate=link.rate, propagation=link.delay,
                deliver=deliver, buffer_bytes=link.buffer,
                ecn_threshold=link.ecn_threshold, name=name)
            node.ports[nbr] = port
            if nbr in self.endpoints:
                self.endpoints[nbr].port = port

    def _make_forwarder(self, counter: Counter,
                        next_switch: str) -> Callable[[Packet], None]:
        """Ingress dispatch at ``next_switch``: count the handoff, then
        send on the flow's pre-chosen egress out of that switch."""
        next_port = self._next_port

        def deliver(packet: Packet) -> None:
            counter.add(1)
            next_port[(packet.flow.flow_id, next_switch)].send(packet)

        return deliver

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow, src: Optional[str] = None,
                 dst: Optional[str] = None, late_ok: bool = False
                 ) -> DctcpSender:
        """Create the sender-side transport for ``flow`` from client
        ``src`` to server ``dst``, pin its route, and register it with
        the destination's I/O architecture."""
        topo = self.topology
        if dst is None:
            dst = next(iter(self.endpoints))
        endpoint = self.endpoints[dst]
        if endpoint.io_arch is None:
            raise RuntimeError("install_io_arch() before add_flow()")
        if src is None:
            clients = topo.client_hosts
            src = clients[0].name if clients else None
        if src is None or src not in topo.hosts:
            raise ValueError(f"unknown source host {src!r}")
        window = endpoint.active_window
        if window is not None and not late_ok:
            raise RuntimeError(
                f"add_flow({flow.name!r}) on {dst!r} after measurement "
                f"started at t={window.t_start:g} ns: the open "
                "MeasurementWindow would silently exclude the flow from "
                "its metrics. Add flows before the window opens, or pass "
                "late_ok=True and call window.note_new_flow(flow) after "
                "registration.")

        index = self._flow_seq
        self._flow_seq += 1
        src_sw, src_link = topo.attachment(src)
        dst_sw, dst_link = topo.attachment(dst)
        table = self._tables[dst]
        if src_sw not in table:
            raise ValueError(f"no route from {src!r} to {dst!r}")
        path_links: List[LinkSpec] = [src_link]
        sw = src_sw
        while sw != dst_sw:
            candidates = table[sw]
            nxt = candidates[index % len(candidates)]
            self._next_port[(flow.flow_id, sw)] = \
                self.switches[sw].ports[nxt]
            path_links.append(topo.link_between(sw, nxt))
            sw = nxt
        self._next_port[(flow.flow_id, dst_sw)] = \
            self.switches[dst_sw].ports[dst]
        path_links.append(dst_link)

        entry_port = self._next_port[(flow.flow_id, src_sw)]
        uplink = src_link.delay
        if uplink == 0.0:
            egress = entry_port.send
        else:
            egress = self._make_uplink(uplink, entry_port)
        self._ack_delay[flow.flow_id] = sum(
            link.reverse_delay for link in path_links)
        sender = DctcpSender(self.sim, flow, egress, self.dctcp_config)
        self.senders[flow.flow_id] = sender
        self.flow_sources[flow.flow_id] = src
        endpoint.flows.append(flow)
        endpoint.io_arch.register_flow(flow)
        if window is not None:
            window.note_new_flow(flow)
        return sender

    def _make_uplink(self, delay: float,
                     entry_port: SwitchPort) -> Callable[[Packet], None]:
        """A client uplink with propagation delay but no serialisation
        (uplinks are uncontended; queueing happens at switch egresses)."""
        sim = self.sim
        send = entry_port.send

        def egress(packet: Packet) -> None:
            sim.call_later(delay, send, packet)

        return egress

    # ------------------------------------------------------------------
    # Reverse path
    # ------------------------------------------------------------------
    def ack(self, packet: Packet, extra_mark: bool = False) -> None:
        sender = self.senders.get(packet.flow.flow_id)
        if sender is None:
            return
        marked = packet.ecn_marked or extra_mark
        self.sim.call_later(self._ack_delay[packet.flow.flow_id],
                            sender.on_ack, packet.seq, marked)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    def interior_ports(self) -> List[Tuple[str, int, SwitchPort, Counter]]:
        """(switch, port index, port, forwarded counter) for every
        switch-to-switch egress, in creation order — the audit hook."""
        out = []
        for node in self.switches.values():
            for i, (nbr, port) in enumerate(node.ports.items()):
                if nbr in node.forwarded:
                    out.append((node.name, i, port, node.forwarded[nbr]))
        return out
