"""Deterministic topology partitioning for sharded parallel DES.

A :class:`ShardPlan` splits a :class:`~repro.topo.graph.Topology` into
``n`` *cells* — connected sets of switches, each switch carrying its
attached hosts — such that the only edges joining different cells are
inter-switch links. Those cut links are the conservative synchronisation
boundaries: their fixed propagation delays bound how far causality can
cross per unit of simulated time, so each cell can run ``lookahead`` ns
past the last barrier without hearing from the others (see
``docs/SHARDING.md``).

The partition is a pure function of ``(topology, shards)``:

- the *atom* is a switch plus its attached hosts (hosts are never
  separated from their attachment switch — host uplinks may have zero
  delay and therefore zero lookahead);
- seeds are the ``shards`` heaviest atoms (host count, ties by switch
  name); cells then grow greedily — the lightest cell claims its
  lowest-named unassigned neighbour — which keeps cells connected and
  balanced by host count with fully sorted tie-breaks;
- requesting more shards than there are switches clamps to one switch
  per shard (a single-switch topology is unsplittable and yields one
  cell, making sharded execution degenerate-but-correct there).

Event-order determinism does **not** depend on the partition: calendar
keys are composite ``(time, domain, count)`` with one domain per switch
(:data:`repro.sim.engine.DOMAIN_SHIFT`), so any partition — including
the trivial one — replays the same global order. The partition only
decides which kernel executes which domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .graph import LinkSpec, Topology

__all__ = ["ShardPlan", "partition"]


@dataclass(frozen=True)
class ShardPlan:
    """The outcome of partitioning a topology into shard cells."""

    #: Cells in shard-index order; each cell is a tuple of switch names.
    cells: Tuple[Tuple[str, ...], ...]
    #: switch name -> shard index.
    shard_of_switch: Dict[str, int]
    #: host name -> shard index (its attachment switch's shard).
    shard_of_host: Dict[str, int]
    #: switch name -> event domain (index in ``topology.switches``).
    domain_of_switch: Dict[str, int]
    #: Inter-switch links joining different cells, declaration order.
    cut_links: Tuple[LinkSpec, ...]
    #: Conservative window, ns: min over cut links of
    #: ``min(delay, reverse_delay)``; ``inf`` when nothing is cut.
    lookahead: float

    @property
    def n_shards(self) -> int:
        return len(self.cells)

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (for runlogs and benchmark records)."""
        return {
            "shards": self.n_shards,
            "cells": [list(cell) for cell in self.cells],
            "cut_links": [link.name for link in self.cut_links],
            "lookahead_ns": self.lookahead,
        }


def partition(topology: Topology, shards: int) -> ShardPlan:
    """Split ``topology`` into at most ``shards`` connected cells.

    Deterministic for a given ``(topology, shards)``; every host lands in
    exactly one cell, and only switch-switch links are ever cut.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    switches = list(topology.switches)
    n = min(shards, len(switches))

    weight = {sw: 0 for sw in switches}
    for host in topology.hosts:
        attach, _ = topology.attachment(host)
        weight[attach] += 1

    if n == 1:
        cells: List[List[str]] = [switches]
    else:
        # Heaviest atoms seed the cells; ties break on switch name.
        seeds = sorted(switches, key=lambda sw: (-weight[sw], sw))[:n]
        assigned: Dict[str, int] = {sw: i for i, sw in enumerate(seeds)}
        cells = [[sw] for sw in seeds]
        loads = [weight[sw] for sw in seeds]
        remaining = len(switches) - n
        while remaining:
            # Lightest cell first (ties by shard index), claiming its
            # lowest-named unassigned neighbour keeps growth balanced
            # and cells connected.
            order = sorted(range(n), key=lambda i: (loads[i], i))
            grown = False
            for i in order:
                frontier = sorted(
                    nbr
                    for sw in cells[i]
                    for nbr in topology.switch_neighbors(sw)
                    if nbr not in assigned)
                if not frontier:
                    continue
                pick = frontier[0]
                assigned[pick] = i
                cells[i].append(pick)
                loads[i] += weight[pick]
                remaining -= 1
                grown = True
                break
            if not grown:  # pragma: no cover - connected graph invariant
                raise RuntimeError("partition failed to grow: topology "
                                   "switch graph is disconnected")

    shard_of_switch: Dict[str, int] = {}
    for i, cell in enumerate(cells):
        for sw in cell:
            shard_of_switch[sw] = i
    shard_of_host = {}
    for host in topology.hosts:
        attach, _ = topology.attachment(host)
        shard_of_host[host] = shard_of_switch[attach]
    domain_of_switch = {sw: i for i, sw in enumerate(topology.switches)}

    cut = tuple(link for link in topology.switch_links()
                if shard_of_switch[link.a] != shard_of_switch[link.b])
    horizon = float("inf")
    for link in cut:
        if link.delay == 0 or link.reverse_delay == 0:
            raise ValueError(
                f"topology.links[{link.name}]: cut link has a zero-delay "
                "direction; conservative sharding needs positive lookahead")
        horizon = min(horizon, link.delay, link.reverse_delay)

    return ShardPlan(
        cells=tuple(tuple(cell) for cell in cells),
        shard_of_switch=shard_of_switch,
        shard_of_host=shard_of_host,
        domain_of_switch=domain_of_switch,
        cut_links=cut,
        lookahead=horizon,
    )
