"""Topology graphs: hosts, switches, and attributed links.

A :class:`Topology` is pure data — a validated graph of host and switch
nodes joined by :class:`LinkSpec` edges carrying per-link rate,
propagation delay, reverse (ACK) delay, buffer size, and ECN threshold.
Compilation into a live simulation (one :class:`~repro.sim.Simulator`,
one :class:`~repro.sim.RngRegistry`, one ``SwitchPort`` per used egress)
is :mod:`repro.topo.fabric`'s job; this module never touches the
simulator, so topologies can be built, validated, serialised, and routed
without side effects.

Routing is deterministic: per destination host, a BFS over the switch
graph yields shortest-path next-hop candidate lists (sorted by switch
name); equal-cost ties are broken per flow by the fabric's registration
counter, never by hashing ids that depend on process history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.units import US, gbps

__all__ = ["HostSpec", "LinkSpec", "Topology"]

#: Defaults mirror :class:`repro.net.fabric.FabricConfig` so a one-link
#: topology behaves exactly like the legacy two-server testbed.
DEFAULT_RATE = gbps(200)
DEFAULT_DELAY = 0.6 * US
DEFAULT_BUFFER = 2_000_000
DEFAULT_ECN_THRESHOLD = 300_000


@dataclass(frozen=True)
class HostSpec:
    """One end host. ``server`` hosts carry a full receiver stack (Host
    hardware model + I/O architecture); non-server hosts are traffic
    sources only (their transport state lives in ``DctcpSender``)."""

    name: str
    server: bool = False

    def __post_init__(self):
        if not self.name or "." in self.name or "/" in self.name:
            raise ValueError(
                f"host name {self.name!r} must be non-empty and must not "
                "contain '.' or '/' (it prefixes RNG stream and audit "
                "account names)")


@dataclass(frozen=True)
class LinkSpec:
    """One undirected edge. ``delay`` is the forward (data) propagation
    delay; ``ack_delay`` is the reverse (ACK) contribution and defaults
    to ``delay`` (symmetric path) when ``None``. ``rate`` / ``buffer`` /
    ``ecn_threshold`` parameterise the egress :class:`SwitchPort` on the
    switch side of the link."""

    a: str
    b: str
    rate: float = DEFAULT_RATE
    delay: float = DEFAULT_DELAY
    ack_delay: Optional[float] = None
    buffer: int = DEFAULT_BUFFER
    ecn_threshold: int = DEFAULT_ECN_THRESHOLD
    name: str = ""

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"link {self.endpoints}: rate must be positive")
        if self.delay < 0:
            raise ValueError(f"link {self.endpoints}: delay must be >= 0")
        if self.ack_delay is not None and self.ack_delay < 0:
            raise ValueError(
                f"link {self.endpoints}: ack_delay must be >= 0")
        if self.buffer <= 0:
            raise ValueError(f"link {self.endpoints}: buffer must be positive")
        if self.ecn_threshold < 0:
            raise ValueError(
                f"link {self.endpoints}: ecn_threshold must be >= 0")

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    @property
    def reverse_delay(self) -> float:
        """The reverse-path (ACK) delay contribution of this link."""
        return self.delay if self.ack_delay is None else self.ack_delay

    def other(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of link "
                         f"{self.endpoints}")


class Topology:
    """A validated multi-host topology.

    Invariants enforced at construction:

    - node names are unique across hosts and switches;
    - every link joins two existing nodes, host—host links are rejected
      (hosts attach through a switch, as in the physical testbed);
    - every host has exactly one attachment link;
    - at most one link joins any node pair (no parallel links);
    - the switch graph is connected, and every host can reach every
      server host.

    ``legacy_names`` is set only by :func:`repro.topo.builders.two_host`:
    it makes the compiled fabric reuse the legacy ``Testbed`` naming
    (unprefixed RNG streams and audit accounts, port name from the link),
    which is what keeps the two-host topology bit-compatible with the
    historical single-pair testbed.
    """

    def __init__(self, hosts: List[HostSpec], switches: List[str],
                 links: List[LinkSpec], legacy_names: bool = False):
        self.hosts: Dict[str, HostSpec] = {}
        for spec in hosts:
            if spec.name in self.hosts:
                raise ValueError(f"duplicate host {spec.name!r}")
            self.hosts[spec.name] = spec
        self.switches: Tuple[str, ...] = tuple(switches)
        for sw in self.switches:
            if not sw or "." in sw or "/" in sw:
                raise ValueError(
                    f"switch name {sw!r} must be non-empty and must not "
                    "contain '.' or '/'")
            if sw in self.hosts:
                raise ValueError(f"{sw!r} is both a host and a switch")
        if len(set(self.switches)) != len(self.switches):
            raise ValueError("duplicate switch names")
        self.legacy_names = legacy_names

        self.links: Tuple[LinkSpec, ...] = ()
        self._adjacent: Dict[str, List[LinkSpec]] = {
            name: [] for name in list(self.hosts) + list(self.switches)}
        seen_pairs = set()
        seen_names = set()
        resolved: List[LinkSpec] = []
        for link in links:
            for end in link.endpoints:
                if end not in self._adjacent:
                    raise ValueError(
                        f"link {link.endpoints} references unknown node "
                        f"{end!r}")
            if link.a in self.hosts and link.b in self.hosts:
                raise ValueError(
                    f"link {link.endpoints}: host-host links are not "
                    "allowed; attach hosts through a switch")
            pair = tuple(sorted(link.endpoints))
            if pair[0] == pair[1]:
                raise ValueError(f"link {link.endpoints} is a self-loop")
            if pair in seen_pairs:
                raise ValueError(f"parallel link {link.endpoints}")
            seen_pairs.add(pair)
            if not link.name:
                link = LinkSpec(link.a, link.b, rate=link.rate,
                                delay=link.delay, ack_delay=link.ack_delay,
                                buffer=link.buffer,
                                ecn_threshold=link.ecn_threshold,
                                name=f"{link.a}-{link.b}")
            if link.name in seen_names:
                raise ValueError(f"duplicate link name {link.name!r}")
            seen_names.add(link.name)
            resolved.append(link)
            self._adjacent[link.a].append(link)
            self._adjacent[link.b].append(link)
        self.links = tuple(resolved)

        for name in self.hosts:
            degree = len(self._adjacent[name])
            if degree != 1:
                raise ValueError(
                    f"host {name!r} must attach to exactly one switch "
                    f"(has {degree} links)")
        for link in self.links:
            if (link.a in self.hosts or link.b in self.hosts):
                continue
            # Inter-switch links are the conservative-sync boundaries of
            # repro.shard: a zero-delay hop would make the lookahead
            # degenerate (no window in which shards can run independently),
            # so it is a topology error, addressed like a scenario path.
            if link.delay == 0:
                raise ValueError(
                    f"topology.links[{link.name}].delay: inter-switch link "
                    f"{link.a!r}--{link.b!r} has delay == 0; switch-switch "
                    "links need positive propagation delay (it is the "
                    "conservative lookahead for sharded execution)")
        self._check_connected()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def server_hosts(self) -> List[HostSpec]:
        return [spec for spec in self.hosts.values() if spec.server]

    @property
    def client_hosts(self) -> List[HostSpec]:
        return [spec for spec in self.hosts.values() if not spec.server]

    def attachment(self, host: str) -> Tuple[str, LinkSpec]:
        """The (switch, link) a host hangs off."""
        link = self._adjacent[host][0]
        return link.other(host), link

    def link_between(self, a: str, b: str) -> LinkSpec:
        for link in self._adjacent[a]:
            if link.other(a) == b:
                return link
        raise KeyError(f"no link between {a!r} and {b!r}")

    def switch_neighbors(self, switch: str) -> List[str]:
        """Adjacent switches, sorted by name (deterministic ECMP order)."""
        return sorted(link.other(switch) for link in self._adjacent[switch]
                      if link.other(switch) not in self.hosts)

    def switch_links(self) -> List[LinkSpec]:
        """The inter-switch links, in declaration order (the only edges a
        shard partition may cut)."""
        return [link for link in self.links
                if link.a not in self.hosts and link.b not in self.hosts]

    def lookahead(self) -> float:
        """The conservative-sync lookahead of this topology, ns.

        The minimum over every inter-switch link of
        ``min(delay, reverse_delay)``: no causal influence can cross a
        switch boundary in less simulated time, so shards may run that
        far without hearing from each other. ``inf`` for a single-switch
        (uncuttable) topology. Raises if any inter-switch link has a
        zero reverse (ACK) delay — the forward direction is already
        rejected at validation.
        """
        horizon = float("inf")
        for link in self.switch_links():
            if link.reverse_delay == 0:
                raise ValueError(
                    f"topology.links[{link.name}].ack_delay: inter-switch "
                    f"link {link.a!r}--{link.b!r} has reverse delay == 0; "
                    "sharded execution needs positive lookahead in both "
                    "directions")
            horizon = min(horizon, link.delay, link.reverse_delay)
        return horizon

    def _check_connected(self) -> None:
        if not self.switches:
            raise ValueError("topology needs at least one switch")
        seen = {self.switches[0]}
        frontier = [self.switches[0]]
        while frontier:
            sw = frontier.pop()
            for nbr in self.switch_neighbors(sw):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        missing = [sw for sw in self.switches if sw not in seen]
        if missing:
            raise ValueError(f"switch graph is disconnected: {missing} "
                             "unreachable from the first switch")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def next_hops_toward(self, dst_host: str) -> Dict[str, Tuple[str, ...]]:
        """Per-switch equal-cost next-hop candidates toward ``dst_host``.

        BFS from the destination's attachment switch; a switch's
        candidates are its neighbors one step closer to the destination,
        sorted by name. The attachment switch itself maps to an empty
        tuple (it delivers directly to the host).
        """
        attach_switch, _ = self.attachment(dst_host)
        dist = {attach_switch: 0}
        order = [attach_switch]
        i = 0
        while i < len(order):
            sw = order[i]
            i += 1
            for nbr in self.switch_neighbors(sw):
                if nbr not in dist:
                    dist[nbr] = dist[sw] + 1
                    order.append(nbr)
        table: Dict[str, Tuple[str, ...]] = {}
        for sw in self.switches:
            if sw not in dist:
                continue
            if sw == attach_switch:
                table[sw] = ()
                continue
            table[sw] = tuple(nbr for nbr in self.switch_neighbors(sw)
                              if dist.get(nbr, -1) == dist[sw] - 1)
        return table

    def path_links(self, src_host: str, dst_host: str,
                   choose=lambda candidates: candidates[0]
                   ) -> List[LinkSpec]:
        """The links a flow traverses from ``src_host`` to ``dst_host``,
        using ``choose`` to break equal-cost ties at each switch."""
        src_switch, src_link = self.attachment(src_host)
        dst_switch, dst_link = self.attachment(dst_host)
        table = self.next_hops_toward(dst_host)
        if src_switch not in table:
            raise ValueError(f"no route from {src_host!r} to {dst_host!r}")
        links = [src_link]
        sw = src_switch
        while sw != dst_switch:
            nxt = choose(table[sw])
            links.append(self.link_between(sw, nxt))
            sw = nxt
        links.append(dst_link)
        return links

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Topology {len(self.hosts)} hosts "
                f"({len(self.server_hosts)} servers), "
                f"{len(self.switches)} switches, {len(self.links)} links>")
