"""Multi-host topologies for the CEIO testbed (see ``docs/SCENARIOS.md``).

:mod:`repro.topo.graph` defines the validated :class:`Topology` data
model (hosts, switches, attributed links, deterministic routing);
:mod:`repro.topo.builders` provides the canonical shapes (``two_host``,
``star``, ``leaf_spine``, ``fat_tree``); :mod:`repro.topo.fabric`
compiles a topology into one simulator with per-host receiver stacks.
"""

from __future__ import annotations

from .builders import fat_tree, leaf_spine, star, two_host
from .fabric import Fabric, HostEndpoint, HostRng, SwitchNode
from .graph import HostSpec, LinkSpec, Topology
from .partition import ShardPlan, partition

__all__ = ["Topology", "HostSpec", "LinkSpec",
           "two_host", "star", "leaf_spine", "fat_tree",
           "Fabric", "HostEndpoint", "HostRng", "SwitchNode",
           "ShardPlan", "partition"]
