"""Multiple Priority Queues (MPQ) — the design alternative CEIO rejects.

§4.1 discusses and dismisses PIAS-style priority scheduling as the way to
keep CPU-involved flows on the fast path: tag flows with priorities that
*decay with bytes sent*, so short flows finish in high-priority queues and
long flows sink. The paper's objection: **CPU-involved flows are not
always short** (continuous RPC streams never stop sending), so they decay
into low priority just like bulk transfers, and the fast path fills with
whatever happens to be young.

This architecture implements exactly that rejected design so the ablation
benchmarks can demonstrate the objection quantitatively: it partitions the
DDIO budget between a high-priority (fast DDIO) class and a low-priority
(DRAM-bound) class, demoting flows PIAS-style once their byte count
crosses per-level thresholds, with periodic aging resets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hw import Host
from ..net.packet import Packet
from ..sim.stats import Counter
from ..sim.units import MS
from .base import IOArchitecture

__all__ = ["MpqConfig", "MpqArch"]


@dataclass
class MpqConfig:
    """PIAS-style demotion thresholds, in bytes sent by the flow."""

    #: Bytes a flow may send before dropping out of each priority level.
    thresholds: List[int] = field(
        default_factory=lambda: [100 * 1024, 1024 * 1024])
    #: Period after which per-flow byte counters reset (priority aging), ns.
    aging_period: float = 1 * MS
    #: Fraction of the DDIO buffer budget reserved for the highest class.
    high_budget_fraction: float = 0.75


class MpqArch(IOArchitecture):
    """Priority-decay receive path: young flows get DDIO, old flows DRAM."""

    name = "mpq"

    def __init__(self, host: Host, config: MpqConfig = None):
        super().__init__(host)
        self.config = config or MpqConfig()
        self._bytes_sent: Dict[int, int] = {}
        self._high_in_use = 0
        self.demotions = Counter("mpq.demotions")
        self.high_packets = Counter("mpq.high_packets")
        self.low_packets = Counter("mpq.low_packets")
        # Conservation meter (repro.audit): high-class slot recycles.
        self.high_released = Counter("mpq.high_released")
        self._aging_proc = self.sim.process(self._aging_loop(),
                                            name="mpq-aging")

    # ------------------------------------------------------------------
    def priority(self, flow_id: int) -> int:
        """0 = highest. Decays as the flow's byte count crosses thresholds."""
        sent = self._bytes_sent.get(flow_id, 0)
        level = 0
        for threshold in self.config.thresholds:
            if sent < threshold:
                break
            level += 1
        return level

    @property
    def high_budget(self) -> int:
        return int(self.host.total_credits
                   * self.config.high_budget_fraction)

    def on_packet(self, packet: Packet):
        self.rx_offered.add(1)
        fid = packet.flow.flow_id
        rx = self.flows.get(fid)
        if rx is None or rx.descriptors_free <= 0:
            self._drop(packet, rx)
            return
        if self._dedup(packet, rx):
            return
        before = self.priority(fid)
        self._bytes_sent[fid] = self._bytes_sent.get(fid, 0) + packet.size
        if self.priority(fid) > before:
            self.demotions.add(1)
        if before == 0 and self._high_in_use < self.high_budget:
            # Highest class: DDIO fast path.
            self._high_in_use += 1
            self.high_packets.add(1)
            yield from self._dma_to_host(packet, rx, ddio=True, path="fast")
        else:
            # Decayed (or budget-full): DRAM-bound low-priority path.
            self.low_packets.add(1)
            yield from self._dma_to_host(packet, rx, ddio=False, path="low")

    def release(self, records) -> None:
        for record in records:
            if record.path == "fast" and self._high_in_use > 0:
                self._high_in_use -= 1
                self.high_released.add(1)
        super().release(records)

    def audit_register(self, ledger) -> None:
        super().audit_register(ledger)
        high = ledger.account("mpq.high_slots", "descriptors",
                              barrier_safe=True)
        high.debit("admitted", self.high_packets)
        high.credit("released", self.high_released)
        high.credit("in_use", (self, "_high_in_use"))

    def high_fraction(self) -> float:
        total = self.high_packets.value + self.low_packets.value
        return self.high_packets.value / total if total else 0.0

    def _aging_loop(self):
        while True:
            yield self.config.aging_period
            self._bytes_sent.clear()
