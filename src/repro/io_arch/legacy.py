"""The Baseline: plain DDIO with per-flow receive rings, no LLC management.

Every received packet takes a per-flow descriptor and is DMAed into the
LLC's DDIO ways. Nothing bounds the total in-flight I/O data, so under
load the DDIO partition thrashes: new arrivals evict unread buffers and
CPU reads degrade into DRAM accesses (§2.2 — the ~88% miss-rate regime
of Figure 9).
"""

from __future__ import annotations

from .base import IOArchitecture

__all__ = ["LegacyDdioArch"]


class LegacyDdioArch(IOArchitecture):
    name = "baseline"

    # The base class already implements exactly this architecture; the
    # subclass exists so experiments can select it by name and so the
    # docstring above has a home.
