"""Common interface for receive-side I/O architectures.

An I/O architecture is the policy layer between the NIC firmware and host
software. It decides, per received packet, where the payload goes (host
LLC via DDIO, host DRAM, on-NIC memory, or dropped), delivers records to
per-flow host rings, and recycles buffers when the application releases
them. The four implementations compared in the paper:

==============  =====================================================
``legacy``      plain DDIO, per-flow rings, no control (the Baseline)
``hostcc``      reactive host congestion control (HostCC, SIGCOMM'23)
``shring``      shared fixed-size receive ring (ShRing, OSDI'23)
``ceio``        this paper — proactive credits + elastic buffering
==============  =====================================================
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..hw import DmaWrite, Host
from ..net.packet import Flow, Packet
from ..sim.stats import Counter, Histogram

__all__ = ["RxRecord", "FlowRx", "IOArchitecture"]

_buffer_keys = itertools.count(1)


class RxRecord:
    """One received packet as seen by host software."""

    __slots__ = ("packet", "key", "path", "deliver_time", "defer_ack")

    def __init__(self, packet: Packet, key: int, path: str = "fast"):
        self.packet = packet
        #: I/O buffer identity used for LLC residency tracking.
        self.key = key
        #: 'fast' (DDIO fast path), 'slow' (via on-NIC memory), 'host'.
        self.path = path
        self.deliver_time: float = 0.0
        #: Hard receiver backpressure: ACK withheld until the slow-path
        #: fetch completes (set past the RED guard band).
        self.defer_ack = False

    @property
    def flow(self) -> Flow:
        return self.packet.flow


class FlowRx:
    """Receiver-side per-flow state: the ring host software polls."""

    def __init__(self, flow: Flow, ring_entries: int):
        self.flow = flow
        self.ring_entries = ring_entries
        #: Delivered records awaiting the application.
        self.ring: Deque[RxRecord] = deque()
        #: Buffers owned by the I/O path right now (descriptor accounting):
        #: incremented when a DMA is issued, decremented on app release.
        self.in_use = 0
        self.delivered = Counter(f"{flow.name}.delivered")
        self.dropped = Counter(f"{flow.name}.rx_dropped")
        self.duplicates = Counter(f"{flow.name}.duplicates")
        self.shed = Counter(f"{flow.name}.shed")
        self.processed = Counter(f"{flow.name}.processed")
        self.processed_bytes = Counter(f"{flow.name}.processed_bytes")
        self.latency = Histogram(f"{flow.name}.latency")
        #: Open-loop flows measure latency from message *submission*
        #: (set by the scenario compiler for demand-driven tenants) so
        #: sender-side queueing under overload shows in the tail.
        self.latency_from_submit = False
        # Receiver-side duplicate suppression: cumulative high-water mark
        # plus the out-of-order accepted set above it.
        self._acc_upto = -1
        self._acc_set: set = set()

    def is_duplicate(self, seq: int) -> bool:
        return seq <= self._acc_upto or seq in self._acc_set

    def note_accepted(self, seq: int) -> None:
        if seq == self._acc_upto + 1:
            self._acc_upto += 1
            while self._acc_upto + 1 in self._acc_set:
                self._acc_upto += 1
                self._acc_set.discard(self._acc_upto)
        elif seq > self._acc_upto:
            self._acc_set.add(seq)

    @property
    def descriptors_free(self) -> int:
        return self.ring_entries - self.in_use

    def record_processed(self, record: RxRecord, now: float) -> None:
        """Application finished a packet: throughput + latency accounting.

        Latency is measured from the packet's *first* transmission, so
        loss-recovery delay shows up in the tail where it belongs.
        """
        self.processed.add(1)
        self.processed_bytes.add(record.packet.payload)
        if self.latency_from_submit and record.packet.submit_time >= 0:
            origin = record.packet.submit_time
        else:
            origin = record.packet.first_send_time
            if origin < 0:
                origin = record.packet.send_time
        self.latency.record(max(1.0, now - origin))


class IOArchitecture:
    """Base class: plain per-flow descriptor rings, DDIO on every write."""

    name = "base"

    def __init__(self, host: Host):
        self.host = host
        self.sim = host.sim
        self.flows: Dict[int, FlowRx] = {}
        #: Set by the testbed: callable(packet, extra_mark=False) that ACKs
        #: an accepted packet back to its sender.
        self.ack: Optional[Callable] = None
        #: Packets this architecture was asked to place (counted at the
        #: top of every ``on_packet`` and on MAC tail drops), balanced
        #: against accepted + dropped + shed + duplicates by the
        #: ``arch.admission`` audit account.
        self.rx_offered = Counter(f"{self.name}.offered")
        self.rx_accepted = Counter(f"{self.name}.accepted")
        self.rx_dropped = Counter(f"{self.name}.dropped")
        #: Packets deliberately load-shed by admission control (ACKed so
        #: the sender moves on, never delivered). Zero for architectures
        #: without guardrails.
        self.rx_shed = Counter(f"{self.name}.shed")
        # Conservation meters (repro.audit). ``_all_rx`` retains per-flow
        # state across unregister_flow so flow sums stay conserved when a
        # worker crashes mid-run (orphan deliveries still mutate it).
        self._all_rx: Dict[int, FlowRx] = {}
        self.dma_write_drops = Counter(f"{self.name}.dma_write_drops")
        self.released_records = Counter(f"{self.name}.released")
        self.popped_records = Counter(f"{self.name}.popped")
        #: Packets accepted whose DMA write has not yet delivered/dropped.
        self.delivery_inflight = 0
        # Ready-flow notification queue: lets a server thread poll "any
        # flow with pending packets" in O(1) instead of sweeping thousands
        # of mostly-idle rings (the Figure 12 regime).
        self._ready_fids: Deque[int] = deque()
        self._ready_set: set = set()
        self._ready_waiters: List = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_flow(self, flow: Flow) -> FlowRx:
        if flow.flow_id in self.flows:
            return self.flows[flow.flow_id]
        rx = FlowRx(flow, self.ring_entries_for(flow))
        self.flows[flow.flow_id] = rx
        self._all_rx[flow.flow_id] = rx
        flow.rx = rx
        return rx

    def unregister_flow(self, flow: Flow) -> None:
        self.flows.pop(flow.flow_id, None)

    def ring_entries_for(self, flow: Flow) -> int:
        return self.host.config.nic.rx_ring_entries

    # ------------------------------------------------------------------
    # NIC-side hooks (run inside the firmware pipeline process)
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet):
        """Default data path: take a descriptor, DMA with DDIO, deliver."""
        self.rx_offered.add(1)
        rx = self.flows.get(packet.flow.flow_id)
        if rx is None or rx.descriptors_free <= 0:
            self._drop(packet, rx)
            return
        if self._dedup(packet, rx):
            return
        yield from self._dma_to_host(packet, rx, ddio=True)

    def _dedup(self, packet: Packet, rx: FlowRx) -> bool:
        """Suppress a spuriously retransmitted packet (already accepted):
        re-ACK it so the sender advances, but do not deliver it twice."""
        if rx.is_duplicate(packet.seq):
            rx.duplicates.add(1)
            if self.ack is not None:
                self.ack(packet)
            return True
        rx.note_accepted(packet.seq)
        return False

    def on_drop(self, packet: Packet) -> None:
        """MAC-buffer tail drop notification (no ACK => sender sees loss)."""
        # Counted offered: a MAC-dropped packet never reaches on_packet,
        # but it was offered to this receive stack all the same.
        self.rx_offered.add(1)
        rx = self.flows.get(packet.flow.flow_id)
        if rx is not None:
            rx.dropped.add(1)
        self.rx_dropped.add(1)

    # ------------------------------------------------------------------
    # Host-software-facing API (polled by the frameworks)
    # ------------------------------------------------------------------
    def rx_burst(self, flow: Flow, max_packets: int) -> List[RxRecord]:
        """Poll up to ``max_packets`` delivered records for ``flow``."""
        rx = self.flows[flow.flow_id]
        batch: List[RxRecord] = []
        while rx.ring and len(batch) < max_packets:
            batch.append(rx.ring.popleft())
        if batch:
            self.popped_records.add(len(batch))
        return batch

    def recv_burst(self, flow: Flow, max_packets: int):
        """Process-context receive: identical to :meth:`rx_burst` here, but
        a generator so architectures with blocking receive semantics (CEIO's
        synchronous-drain ablation) can stall the calling application."""
        return self.rx_burst(flow, max_packets)
        yield  # pragma: no cover - makes this function a generator

    def release(self, records: List[RxRecord]) -> None:
        """Application is done with these buffers: recycle descriptors and
        drop the dead LLC lines."""
        for record in records:
            # Fall back to the retained index so releases arriving after a
            # crash_restart unregister still balance the descriptor ledger.
            rx = self._all_rx.get(record.flow.flow_id)
            if rx is not None:
                rx.in_use -= 1
                self.released_records.add(1)
            self.host.llc.release(record.key)

    def app_overhead_cycles(self) -> float:
        """Extra per-packet CPU cycles this architecture imposes on apps
        (e.g. ShRing's shared-ring dispatch). Zero for most."""
        return 0.0

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _drop(self, packet: Packet, rx: Optional[FlowRx]) -> None:
        self.rx_dropped.add(1)
        if rx is not None:
            rx.dropped.add(1)
        # No ACK: the sender's CCA discovers the loss.

    def _shed(self, packet: Packet, rx: Optional[FlowRx]) -> None:
        """Load-shed an admitted-for-decision packet: ACK it *unmarked*
        so the sender completes the message and does not retransmit (or
        back off below link rate), but never spend a descriptor, a DMA
        write, or DDIO occupancy on it. The deliberate counterpart of
        :meth:`_drop` — metered separately so offered load reconciles as
        accepted + dropped + shed + duplicates."""
        self.rx_shed.add(1)
        if rx is not None:
            rx.shed.add(1)
        if self.ack is not None:
            self.ack(packet)

    def _accept(self, packet: Packet, extra_mark: bool = False) -> None:
        self.rx_accepted.add(1)
        if self.ack is not None:
            self.ack(packet, extra_mark)

    def _dma_to_host(self, packet: Packet, rx: FlowRx, ddio: bool,
                     extra_mark: bool = False, path: str = "fast"):
        """Issue the DMA write and deliver a record on completion.

        Runs in the firmware pipeline: blocking on PCIe posted credits here
        back-pressures the MAC buffer, as real hardware does.
        """
        rx.in_use += 1
        self.delivery_inflight += 1
        record = RxRecord(packet, next(_buffer_keys), path=path)
        self._accept(packet, extra_mark)

        def deliver(now: float) -> None:
            self.delivery_inflight -= 1
            packet.delivered_time = now
            record.deliver_time = now
            self._deliver_record(rx, record)
            rx.delivered.add(1)

        write = DmaWrite(record.key, packet.size, ddio=ddio, deliver=deliver,
                         flow_id=packet.flow.flow_id)
        yield from self.host.nic.dma.write_to_host(write)
        if write.dropped:
            # Descriptor-drop fault swallowed the write after admission:
            # the flow loses the packet (it was ACKed, so the sender will
            # not retransmit) and the descriptor leaks until release — the
            # realistic failure mode. Account the loss to the flow.
            self.delivery_inflight -= 1
            self.dma_write_drops.add(1)
            rx.dropped.add(1)

    def _deliver_record(self, rx: FlowRx, record: RxRecord) -> None:
        """Make a completed record visible to host software. Subclasses
        with a different host-facing structure (ShRing's shared ring)
        override this."""
        rx.ring.append(record)
        self._notify_ready(rx.flow.flow_id)

    def _notify_ready(self, fid: int) -> None:
        if fid not in self._ready_set:
            self._ready_set.add(fid)
            self._ready_fids.append(fid)
        if self._ready_waiters:
            waiters, self._ready_waiters = self._ready_waiters, []
            for waiter in waiters:
                waiter.succeed()

    def wait_ready(self):
        """Event that fires on the next ready-flow notification (the
        interrupt half of a NAPI-style consumer: poll until empty, then
        block here instead of spinning)."""
        ev = self.sim.event()
        if self._ready_fids:
            ev.succeed()
        else:
            self._ready_waiters.append(ev)
        return ev

    def poll_any(self, max_packets: int) -> List[RxRecord]:
        """Return records from whichever flow is ready first (NAPI-style).

        Used by servers that multiplex many flows over few cores. Scans
        each currently-ready flow at most once per call — a flow that is
        "ready" but yields nothing yet (e.g. CEIO entries awaiting a
        slow-path fetch) must not spin the caller.
        """
        for _ in range(len(self._ready_fids)):
            fid = self._ready_fids.popleft()
            self._ready_set.discard(fid)
            rx = self.flows.get(fid)
            if rx is None:
                continue
            records = self.rx_burst(rx.flow, max_packets)
            if self._flow_still_ready(fid):
                self._notify_ready(fid)
            if records:
                return records
        return []

    def _flow_still_ready(self, fid: int) -> bool:
        rx = self.flows.get(fid)
        return rx is not None and bool(rx.ring)

    # ------------------------------------------------------------------
    # Conservation auditing (repro.audit)
    # ------------------------------------------------------------------
    def audit_register(self, ledger) -> None:
        """Register this architecture's conservation accounts on ``ledger``.

        Three balance equations every receive architecture must satisfy:
        accepted packets are delivered, in flight, or dropped by a DMA
        fault; delivered records are popped or still ringed; and accepted
        descriptors are released or still owned by the I/O path. Subclasses
        with extra structures extend this (and call ``super()``).
        """
        rxs = self._all_rx
        delivery = ledger.account("arch.delivery", "packets",
                                  barrier_safe=True)
        delivery.debit("accepted", self.rx_accepted)
        delivery.credit("delivered",
                        lambda: sum(rx.delivered.value for rx in rxs.values()))
        delivery.credit("inflight", (self, "delivery_inflight"))
        delivery.credit("dma_write_drops", self.dma_write_drops)

        rings = ledger.account("arch.app_rings", "packets", barrier_safe=True)
        rings.debit("delivered",
                    lambda: sum(rx.delivered.value for rx in rxs.values()))
        rings.credit("popped", self.popped_records)
        rings.credit("ring_occupancy", self._audit_ring_occupancy)

        desc = ledger.account("arch.descriptors", "descriptors",
                              barrier_safe=True)
        desc.debit("accepted", self.rx_accepted)
        desc.credit("released", self.released_records)
        desc.credit("in_use", lambda: sum(rx.in_use for rx in rxs.values()))

        self._register_admission_account(ledger)

    def _register_admission_account(self, ledger) -> None:
        """``arch.admission``: every packet offered to the receive stack
        is accepted, dropped, deliberately shed, or a suppressed
        duplicate — the overload-guardrail balance (offered == delivered
        + shed + dropped reconciles through ``arch.delivery``). Bounded
        by the one packet that may be mid-decision inside the firmware
        handler."""
        rxs = self._all_rx
        admission = ledger.account("arch.admission", "packets",
                                   barrier_safe=True, bounded=True)
        admission.debit("offered", self.rx_offered)
        admission.credit("accepted", self.rx_accepted)
        admission.credit("dropped", self.rx_dropped)
        admission.credit("shed", self.rx_shed)
        admission.credit("duplicates",
                         lambda: sum(rx.duplicates.value
                                     for rx in rxs.values()))
        admission.slack("in_handler", (self.host.nic, "handler_inflight"))

    def _audit_ring_occupancy(self) -> int:
        """Delivered-but-unpopped records (shared-ring archs override)."""
        return sum(len(rx.ring) for rx in self._all_rx.values())
