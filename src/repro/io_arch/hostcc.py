"""HostCC (Agarwal et al., SIGCOMM 2023): reactive host congestion control.

A host-side controller samples *host congestion signals* — IIO buffer
occupancy and PCIe bandwidth utilisation — at a millisecond-free but still
finite control interval. When the signals exceed thresholds it (a)
throttles the NIC's DMA issue rate by pacing the firmware pipeline, and
(b) asserts ECN toward senders so DCTCP reduces the network ingress rate.

The fundamental limitation reproduced here (§2.3): the congestion signal
is a *consequence* of LLC thrash (evictions saturate memory bandwidth,
which backs up the IIO), so by the time HostCC reacts, misses have already
happened — the "slow response" that costs up to 1.9× under dynamic
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw import Host
from ..sim import TokenBucket
from ..sim.stats import Counter
from ..sim.units import US
from ..net.packet import Packet
from .base import IOArchitecture

__all__ = ["HostccConfig", "HostccArch"]


@dataclass
class HostccConfig:
    #: Controller sampling interval, ns (kernel-module polling cadence).
    control_interval: float = 10 * US
    #: IIO fill fraction above which the host is "congested".
    iio_high: float = 0.30
    #: IIO fill fraction below which congestion is cleared.
    iio_low: float = 0.10
    #: PCIe utilisation above which the host is "congested".
    pcie_high: float = 0.95
    #: Effective DRAM bandwidth utilisation above/below which congestion
    #: is asserted/cleared (write-backs + miss traffic; "memory bandwidth
    #: usage" in the HostCC design).
    dram_high: float = 0.25
    dram_low: float = 0.08
    #: Multiplicative decrease applied to the DMA pacing rate.
    decrease: float = 0.75
    #: Additive increase of the DMA pacing rate per interval, bytes/ns.
    increase: float = 1.5


class HostccArch(IOArchitecture):
    name = "hostcc"

    def __init__(self, host: Host, config: HostccConfig = None):
        super().__init__(host)
        self.config = config or HostccConfig()
        rate = host.config.link_rate
        #: Pacer on DMA issue; HostCC adjusts its rate reactively.
        self._pacer = TokenBucket(self.sim, rate=rate,
                                  burst=64 * 1024, name="hostcc.pacer")
        self._max_rate = rate
        self._congested = False
        #: ECN-marking stream off the experiment's seeded registry, so
        #: ``--seed`` perturbs HostCC's marking like every other
        #: stochastic component (it used to mint a fixed-seed Random).
        self._rng = host.rng.stream("hostcc.ecn")
        self.congestion_events = Counter("hostcc.congestion_events")
        self._ctl_proc = self.sim.process(self._control_loop(),
                                          name="hostcc-ctl")

    @property
    def dma_rate(self) -> float:
        return self._pacer.rate

    @property
    def congested(self) -> bool:
        return self._congested

    def on_packet(self, packet: Packet):
        self.rx_offered.add(1)
        rx = self.flows.get(packet.flow.flow_id)
        if rx is None or rx.descriptors_free <= 0:
            self._drop(packet, rx)
            return
        if self._dedup(packet, rx):
            return
        # Reactive throttle: pace DMA issue at the controller's rate.
        yield self._pacer.take(packet.size)
        # While congested, assert ECN proportionally to IIO fill so DCTCP
        # converges rather than collapsing.
        mark = (self._congested
                and self._rng.random() < min(1.0,
                                             2 * self.host.iio.fill_fraction))
        yield from self._dma_to_host(packet, rx, ddio=True, extra_mark=mark)

    def _control_loop(self):
        cfg = self.config
        while True:
            yield cfg.control_interval
            now = self.sim.now
            iio_fill = self.host.iio.fill_fraction
            pcie_util = self.host.pcie.utilization(now)
            dram_util = self.host.dram.utilization(now)
            if (iio_fill > cfg.iio_high or pcie_util > cfg.pcie_high
                    or dram_util > cfg.dram_high):
                if not self._congested:
                    self.congestion_events.add(1)
                self._congested = True
                self._pacer.set_rate(max(1.0,
                                         self._pacer.rate * cfg.decrease))
            elif iio_fill < cfg.iio_low and dram_util < cfg.dram_low:
                self._congested = False
                self._pacer.set_rate(min(self._max_rate,
                                         self._pacer.rate + cfg.increase))
