"""Receive-side I/O architectures: baseline, HostCC, ShRing, and CEIO."""

from .base import FlowRx, IOArchitecture, RxRecord
from .hostcc import HostccArch, HostccConfig
from .legacy import LegacyDdioArch
from .mpq import MpqArch, MpqConfig
from .shring import ShringArch, ShringConfig

__all__ = [
    "FlowRx", "IOArchitecture", "RxRecord",
    "LegacyDdioArch",
    "HostccArch", "HostccConfig",
    "MpqArch", "MpqConfig",
    "ShringArch", "ShringConfig",
    "ARCHITECTURES", "build_arch",
]

#: Registry used by experiments to select architectures by name. CEIO
#: registers itself on import of :mod:`repro.core.runtime` (which depends
#: on this package, so it cannot be imported from here).
ARCHITECTURES = {  # repro: noqa=D106 -- registry, mutated at import only
    "baseline": LegacyDdioArch,
    "hostcc": HostccArch,
    "shring": ShringArch,
    "mpq": MpqArch,
}


def build_arch(name: str, host, **kwargs):
    """Instantiate an architecture by registry name."""
    if "ceio" not in ARCHITECTURES:
        from ..core import runtime as _ceio_runtime  # noqa: F401 (registers)
    try:
        cls = ARCHITECTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown I/O architecture {name!r}; "
            f"choose from {sorted(ARCHITECTURES)}") from None
    return cls(host, **kwargs)
