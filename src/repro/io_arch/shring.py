"""ShRing (Pismenny et al., OSDI 2023): a shared, fixed-size receive ring.

All flows share one receive ring whose entry count is fixed *below* the
LLC capacity, so in-flight I/O data can never overflow the DDIO partition
and LLC misses are (almost) eliminated. Two costs reproduced here (§2.3):

- **fixed capacity** — when the shared ring fills, packets must not be
  admitted. ShRing leans on the network CCA to prevent the resulting
  drops: we mark ECN once occupancy crosses a guard threshold, and drop
  outright at 100%. Either way the *network* ingress rate is cut even
  when the LLC itself could have absorbed more (e.g. when newly-arrived
  bypass flows eat ring entries that CPU-involved flows needed);
- **shared-ring dispatch** — applications polling a shared ring pay extra
  per-packet work to skip other flows' entries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

from ..hw import Host
from ..net.packet import Flow, Packet
from ..sim.stats import Counter
from .base import IOArchitecture, RxRecord

__all__ = ["ShringConfig", "ShringArch"]


@dataclass
class ShringConfig:
    #: Shared receive-ring entries (the paper's eval fixes 4096, below the
    #: 12 MB LLC: 4096 x 2 KB = 8 MB).
    ring_entries: int = 4096
    #: Occupancy fraction at which ECN marking starts; marking probability
    #: ramps linearly from the guard to 1.0 at a full ring. ``>= 1.0``
    #: disables marking entirely — the faithful ShRing behaviour, where a
    #: full ring *drops* and the network CCA reacts to loss (the paper's
    #: "frequently trigger CCAs to prevent packet loss" critique). The
    #: gentler ECN variant is kept for the ablation benchmarks.
    #: Default 0.6: marking engages near overflow, so transient bursts
    #: still overflow and drop — throughput holds statically while
    #: drop-recovery episodes inflate the tail (Table 2's ShRing column).
    ecn_guard: float = 0.6
    #: Extra per-packet CPU cycles for shared-ring dispatch.
    dispatch_cycles: float = 40.0


class ShringArch(IOArchitecture):
    name = "shring"

    def __init__(self, host: Host, config: ShringConfig = None):
        super().__init__(host)
        self.config = config or ShringConfig()
        self._shared_in_use = 0
        #: The shared ring proper: delivered records in arrival order,
        #: consumable by ANY core (that is the point of ShRing — cores
        #: drain a common ring, paying a per-packet dispatch cost).
        self._shared_ring = deque()
        #: Guard-band marking streams off the seeded registry (was one
        #: fixed-seed Random that ignored ``--seed``). Per *flow*: a
        #: shared stream correlates the mark decisions of concurrent
        #: flows, and one unlucky draw window then marks every sender at
        #: once — a synchronized CCA backoff the real ShRing (independent
        #: per-packet coin flips at distinct NIC queues) does not exhibit.
        #: Streams are keyed by registration ordinal, not flow_id: the
        #: global flow-id counter depends on what ran earlier in the
        #: process, and the draws must not.
        self._guard_rng = host.rng
        self._guard_streams: dict = {}
        self.ring_full_drops = Counter("shring.ring_full_drops")
        self.guard_marks = Counter("shring.guard_marks")
        # Conservation meters (repro.audit): every admitted shared-ring
        # slot is either released or still in use — a slot that is neither
        # has leaked (the descriptor_drop chaos narrative).
        self.shared_admitted = Counter("shring.shared_admitted")
        self.shared_released = Counter("shring.shared_released")

    @property
    def shared_in_use(self) -> int:
        return self._shared_in_use

    @property
    def shared_free(self) -> int:
        return self.config.ring_entries - self._shared_in_use

    def ring_entries_for(self, flow: Flow) -> int:
        # Per-flow accounting is unconstrained; the shared ring is the bound.
        return self.config.ring_entries

    def register_flow(self, flow: Flow):
        rx = super().register_flow(flow)
        if flow.flow_id not in self._guard_streams:
            ordinal = len(self._guard_streams)
            self._guard_streams[flow.flow_id] = self._guard_rng.stream(  # repro: noqa=D109 -- per-flow guard streams; name derives from the deterministic registration ordinal
                f"shring.guard.{ordinal}")
        return rx

    def app_overhead_cycles(self) -> float:
        return self.config.dispatch_cycles

    def on_packet(self, packet: Packet):
        self.rx_offered.add(1)
        rx = self.flows.get(packet.flow.flow_id)
        if rx is None or self.shared_free <= 0:
            self.ring_full_drops.add(1)
            self._drop(packet, rx)
            return
        if self._dedup(packet, rx):
            return
        self._shared_in_use += 1
        self.shared_admitted.add(1)
        guard = self._guard_mark(packet.flow.flow_id)
        if guard:
            self.guard_marks.add(1)
        yield from self._dma_to_host(packet, rx, ddio=True, extra_mark=guard)

    def _deliver_record(self, rx, record: RxRecord) -> None:
        self._shared_ring.append(record)
        self._notify_ready(record.flow.flow_id)

    def _flow_still_ready(self, fid: int) -> bool:
        return bool(self._shared_ring)

    def rx_burst(self, flow: Flow, max_packets: int) -> List[RxRecord]:
        """Any core takes the oldest records regardless of flow."""
        batch: List[RxRecord] = []
        while self._shared_ring and len(batch) < max_packets:
            batch.append(self._shared_ring.popleft())
        if batch:
            self.popped_records.add(len(batch))
        return batch

    def _guard_mark(self, flow_id: int) -> bool:
        """Probabilistic ECN: ramps from 0 at the guard level to 1 at full."""
        g = self.config.ecn_guard
        if g >= 1.0:
            return False
        fill = self._shared_in_use / self.config.ring_entries
        if fill <= g:
            return False
        return self._guard_streams[flow_id].random() < (fill - g) / (1.0 - g)

    def release(self, records) -> None:
        super().release(records)
        self._shared_in_use -= len(records)
        if records:
            self.shared_released.add(len(records))

    def _audit_ring_occupancy(self) -> int:
        return len(self._shared_ring)

    def audit_register(self, ledger) -> None:
        super().audit_register(ledger)
        shared = ledger.account("shring.shared_slots", "descriptors",
                                barrier_safe=True)
        shared.debit("admitted", self.shared_admitted)
        shared.credit("released", self.shared_released)
        shared.credit("in_use", (self, "_shared_in_use"))
