"""repro — a full-system reproduction of CEIO (SIGCOMM 2025).

CEIO is a cache-efficient network I/O architecture for NIC-CPU data paths:
proactive, credit-based flow control at the NIC keeps in-flight I/O data
within the LLC's DDIO partition, and elastic on-NIC buffering absorbs the
excess instead of dropping it. Since the paper's SmartNIC/LLC testbed is
hardware, this package reproduces the system on a packet-level
discrete-event simulation of the whole NIC-PCIe-IIO-LLC-DRAM-CPU path (see
DESIGN.md for the substitution argument).

See ``examples/quickstart.py`` for a complete runnable walkthrough.
"""

from .core import CeioArchitecture, CeioConfig, CreditController
from .hw import Host, HostConfig, paper_testbed
from .io_arch import (
    ARCHITECTURES,
    HostccArch,
    LegacyDdioArch,
    MpqArch,
    ShringArch,
    build_arch,
)
from .net import FabricConfig, Flow, FlowKind, Message, Testbed

__version__ = "0.1.0"

__all__ = [
    "CeioArchitecture", "CeioConfig", "CreditController",
    "Host", "HostConfig", "paper_testbed",
    "ARCHITECTURES", "build_arch",
    "LegacyDdioArch", "HostccArch", "MpqArch", "ShringArch",
    "FabricConfig", "Flow", "FlowKind", "Message", "Testbed",
    "__version__",
]
