"""Seeded, named random-number streams.

Every stochastic component draws from its own named stream so that (a) runs
are exactly reproducible given a root seed, and (b) changing how one
component consumes randomness does not perturb any other component — the
standard substream discipline for simulation experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent ``random.Random`` streams keyed by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        digest = hashlib.sha256(
            f"{self.root_seed}/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
