"""Synchronisation primitives built on the DES kernel.

These mirror the classic SimPy resource set, specialised for the needs of
the I/O-path models:

- :class:`Store` — a bounded FIFO of Python objects (descriptor rings,
  switch queues, IIO entries).
- :class:`Container` — a continuous level with blocking ``get``/``put``
  (credit pools, PCIe flow-control credits, byte counters).
- :class:`Resource` — a counted server with FIFO request queue (DMA engines,
  memory channels).
- :class:`TokenBucket` — a rate limiter replenishing tokens continuously
  (link pacing, DMA throttling).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Store", "Container", "Resource", "TokenBucket"]


class Store:
    """A bounded FIFO queue of items with blocking get/put.

    ``put`` returns an event that fires once the item is accepted (possibly
    immediately); ``get`` returns an event whose value is the item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = ""):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; blocks (as an event) while the store is full."""
        ev = self.sim.event()
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (dropping nothing) when full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Dequeue the oldest item; blocks while empty."""
        ev = self.sim.event()
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putters()
        return item

    def get_batch(self, max_items: int) -> List[Any]:
        """Drain up to ``max_items`` immediately (polling idiom)."""
        batch: List[Any] = []
        while self.items and len(batch) < max_items:
            batch.append(self.items.popleft())
        if batch:
            self._admit_putters()
        return batch

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class Container:
    """A continuous quantity with blocking get/put against a capacity.

    Used for credit pools: ``get(n)`` blocks until at least ``n`` units are
    available; ``put(n)`` blocks while the container would overflow.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0, name: str = ""):
        if init < 0 or init > capacity:
            raise SimulationError("Container init out of range")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: Deque[tuple] = deque()  # (event, amount)
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        ev = self.sim.event()
        if not self._getters and self._level >= amount:
            self._level -= amount
            ev.succeed(amount)
            self._admit_putters()
        else:
            self._getters.append((ev, amount))
        return ev

    def try_get(self, amount: float) -> bool:
        """Non-blocking get; fairness-preserving (fails if anyone waits)."""
        if self._getters or self._level < amount:
            return False
        self._level -= amount
        self._admit_putters()
        return True

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        ev = self.sim.event()
        if not self._putters and self._level + amount <= self.capacity:
            self._level += amount
            ev.succeed()
            self._admit_getters()
        else:
            self._putters.append((ev, amount))
        return ev

    def try_put(self, amount: float) -> bool:
        if self._putters or self._level + amount > self.capacity:
            return False
        self._level += amount
        self._admit_getters()
        return True

    def _admit_getters(self) -> None:
        while self._getters and self._level >= self._getters[0][1]:
            ev, amount = self._getters.popleft()
            self._level -= amount
            ev.succeed(amount)

    def _admit_putters(self) -> None:
        while self._putters and self._level + self._putters[0][1] <= self.capacity:
            ev, amount = self._putters.popleft()
            self._level += amount
            ev.succeed()
        # Puts may have freed room for smaller pending gets.
        self._admit_getters()


class Resource:
    """A counted server: up to ``capacity`` concurrent holders, FIFO queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = self.sim.event()
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Process helper: acquire, hold for ``duration`` ns, release."""
        yield self.request()
        try:
            yield duration
        finally:
            self.release()


class TokenBucket:
    """A continuously-replenished token bucket used for rate limiting.

    Tokens accrue at ``rate`` units per nanosecond up to ``burst``. ``take``
    returns an event that fires once the requested tokens are available;
    requests are served FIFO so heavy askers cannot starve light ones.
    ``rate`` may be changed at any time (congestion control does this).

    Serving uses a small epsilon and the re-arm delay has a floor: without
    them, floating-point residue (a deficit of ~1e-13 tokens whose refill
    delay underflows below the clock's ULP at large timestamps) livelocks
    the simulation at a single instant.
    """

    #: Token comparison tolerance.
    EPSILON = 1e-6
    #: Minimum re-arm delay, ns.
    MIN_DELAY = 1e-3

    def __init__(self, sim: Simulator, rate: float, burst: float,
                 init: Optional[float] = None, name: str = ""):
        if rate < 0 or burst <= 0:
            raise SimulationError("TokenBucket needs rate >= 0 and burst > 0")
        self.sim = sim
        self._rate = rate
        self.burst = burst
        self.name = name
        self._tokens = burst if init is None else min(init, burst)
        self._stamp = sim.now
        self._waiters: Deque[tuple] = deque()  # (event, amount)
        #: Pending ``call_later`` handle for the armed wake-up, if any.
        self._wakeup: Optional[list] = None
        self._drain_cb = self._drain

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the replenish rate, settling accrued tokens first."""
        if rate < 0:
            raise SimulationError("rate must be non-negative")
        self._settle()
        self._rate = rate
        self._reschedule()

    @property
    def tokens(self) -> float:
        self._settle()
        return self._tokens

    def _settle(self) -> None:
        now = self.sim.now
        if now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self._rate)
            self._stamp = now

    def take(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("take() needs a positive amount")
        if amount > self.burst:
            raise SimulationError(
                f"cannot take {amount} from bucket with burst {self.burst}")
        ev = self.sim.event()
        self._settle()
        if not self._waiters and self._tokens + self.EPSILON >= amount:
            self._serve(amount)
            ev.succeed()
        else:
            self._waiters.append((ev, amount))
            self._reschedule()
        return ev

    def try_take(self, amount: float) -> bool:
        self._settle()
        if self._waiters or self._tokens + self.EPSILON < amount:
            return False
        self._serve(amount)
        return True

    def _serve(self, amount: float) -> None:
        self._tokens = max(0.0, self._tokens - amount)

    def _reschedule(self) -> None:
        """(Re)arm the wake-up for the head waiter."""
        if not self._waiters:
            return
        self._settle()
        _ev, amount = self._waiters[0]
        deficit = amount - self._tokens
        if deficit <= 0:
            delay = 0.0
        elif self._rate == 0:
            return  # paused; set_rate() will re-arm
        else:
            delay = max(deficit / self._rate, self.MIN_DELAY)
        if self._wakeup is not None:
            # Supersede the armed wake-up: O(1) in-place cancellation.
            self.sim.cancel(self._wakeup)
        self._wakeup = self.sim.call_later(delay, self._drain_cb)

    def _drain(self) -> None:
        self._wakeup = None
        self._settle()
        while self._waiters and self._tokens + self.EPSILON >= self._waiters[0][1]:
            ev, amount = self._waiters.popleft()
            self._serve(amount)
            ev.succeed()
        if self._waiters:
            self._reschedule()
