"""Structured event tracing for debugging and analysis.

A :class:`Tracer` collects typed, timestamped events from any component
(`tracer.emit("nic.rx", flow=3, size=1024)`); filters keep overhead near
zero when a category is disabled. Traces can be dumped as text or
materialised per category for assertions in tests ("did the steering rule
flip before the first slow-path packet?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer", "NullTracer"]


@dataclass
class TraceEvent:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:14.2f}] {self.category:<24} {parts}"


class Tracer:
    """Collects events, optionally filtered to a set of categories."""

    def __init__(self, sim, categories: Optional[Iterable[str]] = None,
                 limit: int = 1_000_000):
        self.sim = sim
        self._enabled = set(categories) if categories is not None else None
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def enabled(self, category: str) -> bool:
        return self._enabled is None or category in self._enabled

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled(category):
            return
        if len(self.events) >= self.limit:
            # Exactly one increment per event past the limit; disabled
            # categories above never reach this point and never count.
            self.dropped += 1
            return
        self.events.append(TraceEvent(self.sim.now, category, fields))

    def category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [e for e in self.events if t0 <= e.time < t1]

    def first(self, category: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.category == category:
                return event
        return None

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.category] = out.get(event.category, 0) + 1
        return out

    def dump(self, write: Callable[[str], Any] = print,
             categories: Optional[Iterable[str]] = None) -> None:
        wanted = set(categories) if categories is not None else None
        for event in self.events:
            if wanted is None or event.category in wanted:
                write(str(event))
        if self.dropped:
            write(f"... {self.dropped} events dropped (limit {self.limit})")


class NullTracer:
    """Drop-in no-op tracer (the default for perf-sensitive runs)."""

    def enabled(self, category: str) -> bool:
        return False

    def emit(self, category: str, **fields: Any) -> None:
        pass
