"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event engine in the
style of SimPy: a :class:`Simulator` owns an event calendar (a binary heap
keyed on simulated time) and *processes* are plain Python generators that
yield :class:`Event` objects to suspend until those events fire.

Time is a ``float`` measured in **nanoseconds** throughout the code base;
helpers for other units live in :mod:`repro.sim.units`.

Hot-path idioms
---------------
The kernel is the per-packet cost floor of every experiment, so the
dominant operations have allocation-free fast paths (see
``docs/ARCHITECTURE.md`` -> "Kernel fast paths" for the full contract):

- ``yield <float>`` from a process means "timeout of that many
  nanoseconds": the process is rescheduled directly on the calendar with
  no :class:`Timeout` (or any other) object constructed. This is the
  preferred way to suspend when the timeout's event object is not needed.
- :meth:`Simulator.call_later` / :meth:`Simulator.call_at` push a plain
  callable (plus positional args) onto the calendar — no ``Event``, no
  closure. They return a *handle* that :meth:`Simulator.cancel` turns
  into a no-op in O(1) without unlinking from the heap.
- ``Simulator.timeout()`` recycles fired :class:`Timeout` objects through
  a small free-list when the sole waiter was a process (the ``yield
  sim.timeout(d)`` idiom). A timeout yielded to the kernel is owned by
  the kernel once the process resumes and must not be retained across
  the resume.

Determinism contract: every scheduling action — event trigger, timeout,
bare-float yield, ``call_later`` — consumes exactly one monotonically
increasing sequence number, and ties at equal simulated time are broken
by that sequence number. Fast paths change *what is allocated*, never
the (time, sequence) order, so identical seeds produce identical event
ordering on either idiom.

Event domains (sharded parallel DES)
------------------------------------
For :mod:`repro.shard`, the calendar supports *domains*: disjoint
sequence-number ranges, one per partition atom (a switch plus its
attached hosts). :meth:`Simulator.set_domain` switches the active
counter; a sequence number drawn in domain ``d`` is the composite
``(d << DOMAIN_SHIFT) | count``, so ties at equal time order by
``(domain, per-domain count)`` — an order every shard can reproduce
locally because it never needs to know how many events *other* domains
scheduled. A simulator that never leaves domain 0 behaves bit-identically
to the historical single-counter kernel (composite == plain count).
Cross-shard messages carry their full ``(time, composite seq)`` key,
computed by the sending shard, and are inserted verbatim with
:meth:`Simulator.post_keyed` — no local sequence number is consumed, so
the merged calendar order equals the single-kernel order. The run loops
restore the *scheduling* domain of each entry (``seq >> DOMAIN_SHIFT``)
before executing it, so work scheduled by a resumed callback is charged
to the correct counter; callbacks that act on another domain's state
(the fabric's boundary-link deliveries and ACK executions) switch
domains explicitly at the top. :meth:`Simulator.run_until` is the
bounded-horizon variant of :meth:`run` used by the conservative
barrier-window protocol: it drains events strictly below (or up to,
inclusive) a horizon and counts executed events.

Sanitizer (debug) mode
----------------------
``Simulator(debug=True)`` — or setting ``REPRO_SIM_DEBUG=1`` in the
environment — turns on a dynamic sanitizer (see ``docs/DETERMINISM.md``
for the full contract). The release hot path is unchanged and stays
allocation-free; when the sanitizer is on the kernel additionally

- asserts monotonic event time in the run loop (and rejects NaN times),
- rejects NaN timeout delays at every scheduling entry point (negative
  delays are rejected unconditionally, debug or not),
- poisons sole-waiter :class:`Timeout` objects after they fire instead
  of recycling them, so a process that illegally retains one across its
  resume gets a hard error instead of silent state aliasing,
- detects events triggered and callbacks scheduled after
  :meth:`Simulator.close` (run teardown), and
- tracks every spawned :class:`Process` so :meth:`Simulator.close`
  can report never-terminated processes at shutdown.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, period):
...     while sim.now < 10:
...         yield period
...         log.append((name, sim.now))
>>> _ = sim.process(worker(sim, "a", 3))
>>> _ = sim.process(worker(sim, "b", 5))
>>> sim.run(until=10)
>>> log
[('a', 3.0), ('b', 5.0), ('a', 6.0), ('a', 9.0), ('b', 10.0)]
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "DOMAIN_SHIFT",
]

#: Bits reserved for the per-domain event count in a composite sequence
#: number: domain ``d``'s counters live in ``[d << 40, (d+1) << 40)``,
#: giving every domain ~1.1e12 events before overflow into the next
#: domain's range (far beyond any run; the debug loop asserts it).
DOMAIN_SHIFT = 40


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown *into* a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; ``cause``
    carries an arbitrary, caller-supplied payload describing the reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel distinguishing "not yet triggered" from a ``None`` event value.
_PENDING = object()

#: Sanitizer poison value: a recycled Timeout retained across a resume.
_RECYCLED = object()

#: Sentinel target for a process suspended on a bare-float timeout.
_BARE = object()

#: Fired Timeouts kept for reuse, per simulator.
_POOL_MAX = 128

_EMPTY = ()


def _cancelled(*_args) -> None:
    """Replacement callable for cancelled calendar entries."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, scheduling all registered callbacks at the current
    simulated time. Events are single-use: triggering twice is an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it fires. ``None`` once fired.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire (value is set)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        if self._value is _RECYCLED:
            raise SimulationError(
                "timeout was recycled by the kernel: a timeout yielded to "
                "the kernel must not be retained across the resume")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        sim = self.sim
        if sim._debug and sim._closed:
            raise SimulationError(
                f"{self!r} triggered after Simulator.close()")
        self._value = value
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._queue, [sim._now, seq, self._process, _EMPTY])
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        sim = self.sim
        if sim._debug and sim._closed:
            raise SimulationError(
                f"{self!r} triggered after Simulator.close()")
        self._ok = False
        self._value = exception
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._queue, [sim._now, seq, self._process, _EMPTY])
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        If the event has already been processed the callback runs at the
        *current* simulation step instead of being lost.
        """
        if self.callbacks is None:
            # Already fired: deliver at the current step.
            sim = self.sim
            if sim._debug:
                if self._value is _RECYCLED:
                    raise SimulationError(
                        "waiting on a timeout the kernel already recycled")
                if sim._closed:
                    raise SimulationError(
                        f"callback scheduled on {self!r} after "
                        "Simulator.close()")
            seq = sim._seq + 1
            sim._seq = seq
            heappush(sim._queue, [sim._now, seq, fn, (self,)])
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    Instances whose sole waiter is a process (``yield sim.timeout(d)``)
    are recycled through the simulator's free-list after firing; such a
    timeout must not be retained by the process across the resume.
    """

    __slots__ = ("delay", "_delayed_value", "_armed")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        Event.__init__(self, sim)
        self.delay = delay
        self._delayed_value = value
        #: True when the kernel may recycle this instance after it fires.
        self._armed = False
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._queue, [sim._now + delay, seq, self._process, _EMPTY])

    def _process(self) -> None:
        # The value is only published when the timeout actually fires so
        # that ``triggered`` stays False while the timeout is pending.
        if self._value is _PENDING:
            self._value = self._delayed_value
        callbacks, self.callbacks = self.callbacks, None
        if self._armed and len(callbacks) == 1:
            # Sole waiter is a process: deliver, then recycle. The resumed
            # generator runs inside this call and reads the value before
            # the reset below.
            callbacks[0](self)
            if self.sim._debug:
                # Sanitizer: poison instead of recycling, so a process
                # that retained this timeout across its resume trips a
                # hard error on the next value/wait instead of silently
                # aliasing a reused instance.
                self._value = _RECYCLED
                self._ok = True
                self._delayed_value = None
                self._armed = False
                return
            self._value = _PENDING
            self._ok = True
            self._delayed_value = None
            self._armed = False
            self.callbacks = []
            pool = self.sim._timeout_pool
            if len(pool) < _POOL_MAX:
                pool.append(self)
            return
        for fn in callbacks:
            fn(self)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The event value is the generator's return value (``StopIteration.value``).

    A process may suspend on any :class:`Event` — or on a bare ``float``
    (or ``int``), meaning a timeout of that many nanoseconds with no event
    object constructed.
    """

    __slots__ = ("generator", "name", "_target", "_send", "_resume_cb",
                 "_bare_cb", "_bare_entry")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Any, Any, Any],
                 name: str = ""):
        Event.__init__(self, sim)
        send = getattr(generator, "send", None)
        if send is None:
            raise SimulationError(
                f"process() requires a generator, got {generator!r}")
        self.generator = generator
        self._send = send
        self.name = name or getattr(generator, "__name__", "process")
        #: What this process is waiting on: an Event, the bare-timeout
        #: sentinel, or None while running.
        self._target: Any = None
        self._bare_entry: Optional[list] = None
        # Prebound callbacks: created once so the per-suspend cost is a
        # plain attribute load instead of a bound-method allocation.
        self._resume_cb = self._resume
        self._bare_cb = self._bare_resume
        # Kick off on the next simulation step.
        if sim._debug:
            if sim._closed:
                raise SimulationError(
                    f"process {self.name!r} spawned after Simulator.close()")
            sim._procs.append(self)
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._queue, [sim._now, seq, self._start, _EMPTY])

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        target = self._target
        if target is None:
            raise SimulationError(
                "cannot interrupt a process that is not waiting")
        self._target = None
        if target is _BARE:
            # Neutralise the pending calendar entry in place.
            entry = self._bare_entry
            entry[2] = _cancelled
            entry[3] = _EMPTY
            self._bare_entry = None
        elif target.callbacks is not None:
            # Detach from the event we were waiting on so its eventual
            # firing does not resume us a second time.
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        sim = self.sim
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._queue,
                 [sim._now, seq, self._step_throw, (Interrupt(cause),)])

    # -- internal --------------------------------------------------------
    def _start(self) -> None:
        self._step_send(None)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _bare_resume(self) -> None:
        self._target = None
        self._bare_entry = None
        self._step_send(None)

    def _step_send(self, value: Any) -> None:
        try:
            target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:
            self._crash(exc)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Bare-number yield: a timeout with nothing allocated beyond
            # the calendar entry itself.
            if target < 0:
                self._step_throw(
                    SimulationError(f"negative timeout delay: {target!r}"))
                return
            sim = self.sim
            if sim._debug and target != target:
                self._step_throw(
                    SimulationError(f"NaN timeout delay in {self.name!r}"))
                return
            seq = sim._seq + 1
            sim._seq = seq
            entry = [sim._now + target, seq, self._bare_cb, _EMPTY]
            heappush(sim._queue, entry)
            self._bare_entry = entry
            self._target = _BARE
            return
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not catch an Interrupt")
        except Exception as inner:
            self._crash(inner)
            return
        cls = target.__class__
        if cls is float or cls is int:
            if target < 0:
                self._step_throw(
                    SimulationError(f"negative timeout delay: {target!r}"))
                return
            sim = self.sim
            if sim._debug and target != target:
                self._step_throw(
                    SimulationError(f"NaN timeout delay in {self.name!r}"))
                return
            seq = sim._seq + 1
            sim._seq = seq
            entry = [sim._now + target, seq, self._bare_cb, _EMPTY]
            heappush(sim._queue, entry)
            self._bare_entry = entry
            self._target = _BARE
            return
        self._wait_on(target)

    def _crash(self, exc: BaseException) -> None:
        """An exception escaped the generator. If another process is
        waiting on this one, deliver the failure there (a parent can catch
        it); otherwise re-raise so the error never passes silently."""
        if self.callbacks:
            self.fail(exc)
        else:
            raise exc

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an "
                "Event or a bare number of nanoseconds")
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._target = target
        callbacks = target.callbacks
        if callbacks is None:
            target.add_callback(self._resume_cb)
            return
        if not callbacks and type(target) is Timeout:
            # Sole waiter on a plain timeout: arm it for free-list reuse.
            target._armed = True
        callbacks.append(self._resume_cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Simulator:
    """The event calendar and simulated clock.

    All model components hold a reference to one ``Simulator`` and interact
    through :meth:`timeout`, :meth:`event`, :meth:`process`, and the
    allocation-free :meth:`call_later` / :meth:`call_at`.

    Calendar entries are ``[time, seq, fn, args]`` lists; ``fn(*args)``
    runs when the entry fires. ``seq`` breaks ties at equal times in
    scheduling order, which is what makes runs deterministic.
    """

    def __init__(self, debug: Optional[bool] = None) -> None:
        if debug is None:
            debug = os.environ.get("REPRO_SIM_DEBUG", "") not in ("", "0")
        self._now: float = 0.0
        self._queue: List[list] = []  # heap of [time, seq, fn, args]
        self._seq = 0
        #: Active event domain and the saved composite counters of the
        #: inactive ones (see module docstring, "Event domains"). A
        #: simulator that never leaves domain 0 keeps ``_multi_domain``
        #: False and pays nothing on the hot run loop.
        self._domain = 0
        self._domain_seqs: dict = {}
        self._multi_domain = False
        #: Events executed by :meth:`run_until` (the shard scaling
        #: metric); plain :meth:`run` does not count.
        self.events_executed = 0
        self._timeout_pool: List[Timeout] = []
        #: Sanitizer mode (see module docstring). Checked with a plain
        #: attribute load on a handful of scheduling paths; never causes
        #: an allocation when off.
        self._debug = debug
        self._closed = False
        #: Every process ever spawned (debug mode only) so close() can
        #: report the never-terminated ones.
        self._procs: List[Process] = []

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def debug(self) -> bool:
        """Whether the dynamic sanitizer is on for this simulator."""
        return self._debug

    @property
    def closed(self) -> bool:
        return self._closed

    # -- event domains ----------------------------------------------------
    @property
    def domain(self) -> int:
        """The active event domain (0 unless domains are in use)."""
        return self._domain

    def set_domain(self, domain: int) -> None:
        """Make ``domain`` the active sequence-number range.

        Every subsequent scheduling action draws composite sequence
        numbers ``(domain << DOMAIN_SHIFT) | count`` until the next
        switch. Counters are preserved across switches. Switching to the
        already-active domain is a no-op, so single-domain code (domain
        0 throughout) is bit-identical to the pre-domain kernel.
        """
        if domain == self._domain:
            return
        self._domain_seqs[self._domain] = self._seq
        self._seq = self._domain_seqs.get(domain, domain << DOMAIN_SHIFT)
        self._domain = domain
        self._multi_domain = True

    def reserve_key(self, delay: float) -> tuple:
        """Consume one sequence number ``delay`` ns from now *without*
        scheduling anything; returns the ``(time, seq)`` calendar key.

        This is how a shard kernel stands in for a ``call_later`` whose
        callback runs in a peer shard: the local counter advances exactly
        as the single-kernel run's would, and the returned key rides the
        cross-shard channel so the peer can insert the entry verbatim.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        if self._debug:
            self._debug_check_delay(delay)
        seq = self._seq + 1
        self._seq = seq
        return (self._now + delay, seq)

    def post_keyed(self, when: float, seq: int, fn: Callable,
                   *args: Any) -> list:
        """Insert a calendar entry with an explicit ``(when, seq)`` key.

        No local sequence number is consumed: the key was allocated by
        whoever scheduled the work (possibly another shard's kernel, via
        :meth:`reserve_key`). ``when`` must not be in the past. Returns
        the entry as a :meth:`cancel`-able handle.
        """
        if when < self._now:
            raise SimulationError(
                f"post_keyed({when}) is in the past (now={self._now})")
        if self._debug:
            self._debug_check_delay(when - self._now)
        entry = [when, seq, fn, args]
        heappush(self._queue, entry)
        return entry

    # -- sanitizer teardown ----------------------------------------------
    def alive_processes(self) -> List[Process]:
        """Never-terminated processes spawned so far (debug mode only;
        always empty in release mode, which does not track processes)."""
        return [p for p in self._procs if p.is_alive]

    def close(self) -> List[Process]:
        """Tear the simulator down and return the leak report.

        After ``close()`` a debug-mode simulator rejects every further
        scheduling action (event triggers, timeouts, process spawns,
        ``call_later``/``call_at``, ``run``) with :class:`SimulationError`
        — catching components that keep scheduling work past the end of
        an experiment. The returned list contains the never-terminated
        processes at shutdown (empty in release mode). Closing twice is
        harmless.
        """
        leaked = self.alive_processes()
        self._closed = True
        return leaked

    # -- event creation ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now.

        Prefer ``yield <delay>`` inside processes when the event object is
        not needed — it allocates nothing.
        """
        if self._debug:
            self._debug_check_delay(delay)
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            t = pool.pop()
            t.delay = delay
            t._delayed_value = value
            seq = self._seq + 1
            self._seq = seq
            heappush(self._queue, [self._now + delay, seq, t._process,
                                   _EMPTY])
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Any, Any, Any],
                name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- allocation-free scheduling ---------------------------------------
    def call_at(self, when: float, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` at absolute time ``when``; returns a handle
        accepted by :meth:`cancel`."""
        if when < self._now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self._now})")
        if self._debug:
            self._debug_check_delay(when - self._now)
        seq = self._seq + 1
        self._seq = seq
        entry = [when, seq, fn, args]
        heappush(self._queue, entry)
        return entry

    def call_later(self, delay: float, fn: Callable, *args: Any) -> list:
        """Run ``fn(*args)`` ``delay`` ns from now; returns a handle
        accepted by :meth:`cancel`. Allocation-free: no Event, no closure."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        if self._debug:
            self._debug_check_delay(delay)
        seq = self._seq + 1
        self._seq = seq
        entry = [self._now + delay, seq, fn, args]
        heappush(self._queue, entry)
        return entry

    def cancel(self, handle: list) -> None:
        """Neutralise a pending :meth:`call_later`/:meth:`call_at` entry.

        O(1): the entry stays on the calendar but fires as a no-op.
        Cancelling an entry that already fired is harmless.
        """
        handle[2] = _cancelled
        handle[3] = _EMPTY

    def schedule(self, delay: float, fn: Callable, *args: Any) -> list:
        """Back-compat alias for :meth:`call_later`."""
        return self.call_later(delay, fn, *args)

    # -- sanitizer checks -------------------------------------------------
    def _debug_check_delay(self, delay: float) -> None:
        """Debug-only scheduling guard: closed simulator, NaN delay."""
        if self._closed:
            raise SimulationError(
                "scheduling a callback after Simulator.close()")
        if delay != delay:
            raise SimulationError("NaN delay scheduled on the calendar")

    # -- execution ---------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event._process`` ``delay`` ns from now (internal)."""
        seq = self._seq + 1
        self._seq = seq
        heappush(self._queue, [self._now + delay, seq, event._process,
                               _EMPTY])

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        entry = heappop(self._queue)
        if self._debug and not entry[0] >= self._now:
            raise SimulationError(
                f"event time went backwards: {entry[0]!r} < {self._now!r}")
        self._now = entry[0]
        if self._multi_domain:
            domain = entry[1] >> DOMAIN_SHIFT
            if domain != self._domain:
                self.set_domain(domain)
        args = entry[3]
        if args:
            entry[2](*args)
        else:
            entry[2]()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or simulated time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so rate computations based on
        ``sim.now`` are well-defined.
        """
        if self._debug:
            self._run_debug(until)
            return
        if self._multi_domain:
            self._run_domains(until)
            return
        queue = self._queue
        pop = heappop
        if until is None:
            while queue:
                entry = pop(queue)
                self._now = entry[0]
                args = entry[3]
                if args:
                    entry[2](*args)
                else:
                    entry[2]()
            return
        if until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        while queue:
            entry = queue[0]
            when = entry[0]
            if when > until:
                break
            pop(queue)
            self._now = when
            args = entry[3]
            if args:
                entry[2](*args)
            else:
                entry[2]()
        if self._now < until:
            self._now = until

    def _run_domains(self, until: Optional[float]) -> None:
        """Release run loop for multi-domain simulators: identical to
        :meth:`run` plus restoring each entry's scheduling domain
        (``seq >> DOMAIN_SHIFT``) before executing it, so cascaded
        scheduling draws from the correct per-domain counter."""
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        pop = heappop
        while queue:
            entry = queue[0]
            when = entry[0]
            if until is not None and when > until:
                break
            pop(queue)
            self._now = when
            domain = entry[1] >> DOMAIN_SHIFT
            if domain != self._domain:
                self.set_domain(domain)
            args = entry[3]
            if args:
                entry[2](*args)
            else:
                entry[2]()
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, until: float, inclusive: bool = False) -> int:
        """Bounded-horizon run for the conservative shard protocol.

        Drains every entry with time strictly below ``until`` — or at
        most ``until`` when ``inclusive`` — then advances the clock to
        exactly ``until`` and returns the number of events executed
        (also accumulated on :attr:`events_executed`). Exclusive windows
        are what barrier synchronisation needs: events *at* a barrier
        belong to the next window, except at the final horizon where
        ``inclusive=True`` reproduces ``run(until=T)`` semantics.
        """
        if until < self._now:
            raise SimulationError(
                f"run_until({until}) is in the past (now={self._now})")
        if self._debug and self._closed:
            raise SimulationError("run_until() after Simulator.close()")
        queue = self._queue
        pop = heappop
        debug = self._debug
        executed = 0
        while queue:
            entry = queue[0]
            when = entry[0]
            if when > until or (when == until and not inclusive):
                break
            if debug and not when >= self._now:
                raise SimulationError(
                    f"event time went backwards: {when!r} < {self._now!r}")
            pop(queue)
            self._now = when
            domain = entry[1] >> DOMAIN_SHIFT
            if domain != self._domain:
                self.set_domain(domain)
            executed += 1
            args = entry[3]
            if args:
                entry[2](*args)
            else:
                entry[2]()
        if self._now < until:
            self._now = until
        self.events_executed += executed
        return executed

    def _run_debug(self, until: Optional[float]) -> None:
        """Sanitizer run loop: same semantics as :meth:`run`, plus a
        monotonic-time assertion (which also rejects NaN event times) on
        every entry popped from the calendar."""
        if self._closed:
            raise SimulationError("run() after Simulator.close()")
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        while queue:
            when = queue[0][0]
            if not when >= self._now:
                raise SimulationError(
                    f"event time went backwards: {when!r} < {self._now!r}")
            if until is not None and when > until:
                break
            entry = heappop(queue)
            self._now = when
            if self._multi_domain:
                domain = entry[1] >> DOMAIN_SHIFT
                if domain != self._domain:
                    self.set_domain(domain)
            args = entry[3]
            if args:
                entry[2](*args)
            else:
                entry[2]()
        if until is not None and self._now < until:
            self._now = until

    def run_process(self, generator: Generator[Any, Any, Any],
                    until: Optional[float] = None) -> Any:
        """Convenience: start ``generator``, run, and return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before run() ended")
        if not proc.ok:
            raise proc._value
        return proc.value
