"""Discrete-event simulation kernel.

This module implements a small, self-contained discrete-event engine in the
style of SimPy: a :class:`Simulator` owns an event calendar (a binary heap
keyed on simulated time) and *processes* are plain Python generators that
yield :class:`Event` objects to suspend until those events fire.

Time is a ``float`` measured in **nanoseconds** throughout the code base;
helpers for other units live in :mod:`repro.sim.units`.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, period):
...     while sim.now < 10:
...         yield sim.timeout(period)
...         log.append((name, sim.now))
>>> _ = sim.process(worker(sim, "a", 3))
>>> _ = sim.process(worker(sim, "b", 5))
>>> sim.run(until=10)
>>> log
[('a', 3.0), ('b', 5.0), ('a', 6.0), ('a', 9.0), ('b', 10.0)]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown *into* a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch the exception and continue; ``cause``
    carries an arbitrary, caller-supplied payload describing the reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel distinguishing "not yet triggered" from a ``None`` event value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    *triggers* it, scheduling all registered callbacks at the current
    simulated time. Events are single-use: triggering twice is an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it fires. ``None`` once fired.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire (value is set)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires.

        If the event has already been processed the callback runs at the
        *current* simulation step instead of being lost.
        """
        if self.callbacks is None:
            # Already fired: deliver on a fresh immediate event.
            imm = Event(self.sim)
            imm.add_callback(lambda _e: fn(self))
            imm.succeed()
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay", "_delayed_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._delayed_value = value
        sim._schedule_event(self, delay)

    def _process(self) -> None:
        # The value is only published when the timeout actually fires so
        # that ``triggered`` stays False while the timeout is pending.
        if self._value is _PENDING:
            self._value = self._delayed_value
        super()._process()


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The event value is the generator's return value (``StopIteration.value``).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running).
        self._target: Optional[Event] = None
        # Kick off on the next simulation step.
        init = Event(sim)
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError(
                "cannot interrupt a process that is not waiting")
        target, self._target = self._target, None
        # Detach from the event we were waiting on so its eventual firing
        # does not resume us a second time.
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        imm = Event(self.sim)
        imm.add_callback(lambda _e: self._step_throw(Interrupt(cause)))
        imm.succeed()

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event.ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:
            self._crash(exc)
            return
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not catch an Interrupt")
        except Exception as inner:
            self._crash(inner)
            return
        self._wait_on(target)

    def _crash(self, exc: BaseException) -> None:
        """An exception escaped the generator. If another process is
        waiting on this one, deliver the failure there (a parent can catch
        it); otherwise re-raise so the error never passes silently."""
        if self.callbacks:
            self.fail(exc)
        else:
            raise exc

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event")
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._target = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self.events if ev.triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Simulator:
    """The event calendar and simulated clock.

    All model components hold a reference to one ``Simulator`` and interact
    through :meth:`timeout`, :meth:`event`, and :meth:`process`.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List = []  # heap of (time, seq, event)
        self._seq = itertools.count()
        self._active = True

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event creation ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable ``delay`` ns from now (no process needed)."""
        ev = Timeout(self, delay)
        ev.add_callback(lambda _e: fn())
        return ev

    # -- execution ---------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or simulated time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so rate computations based on
        ``sim.now`` are well-defined.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_process(self, generator: Generator[Event, Any, Any],
                    until: Optional[float] = None) -> Any:
        """Convenience: start ``generator``, run, and return its value."""
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError("process did not finish before run() ended")
        if not proc.ok:
            raise proc._value
        return proc.value
