"""Unit helpers and physical constants.

Conventions used throughout the code base:

- **time** — nanoseconds (``float``)
- **size** — bytes (``int`` where possible)
- **rate** — bytes per nanosecond (equal to GB/s divided by ~1.07, i.e.
  ``200 Gbps == 25 bytes/ns``)
"""

from __future__ import annotations

__all__ = [
    "NS", "US", "MS", "SEC",
    "KB", "MB", "GB", "KIB", "MIB", "GIB",
    "CACHE_LINE",
    "gbps", "to_gbps", "mpps", "to_mpps", "ns_per_packet",
    "ghz_cycle_ns",
]

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0

# Decimal sizes (network conventions) and binary sizes (memory conventions).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

CACHE_LINE = 64


def gbps(g: float) -> float:
    """Convert gigabits-per-second to bytes-per-nanosecond."""
    return g * 1e9 / 8 / 1e9


def to_gbps(bytes_per_ns: float) -> float:
    """Convert bytes-per-nanosecond back to gigabits-per-second."""
    return bytes_per_ns * 8


def mpps(m: float) -> float:
    """Convert million-packets-per-second to packets-per-nanosecond."""
    return m * 1e6 / 1e9


def to_mpps(packets_per_ns: float) -> float:
    """Convert packets-per-nanosecond to million-packets-per-second."""
    return packets_per_ns * 1e3


def ns_per_packet(link_gbps: float, frame_bytes: int) -> float:
    """Inter-arrival time of back-to-back frames on a link.

    >>> round(ns_per_packet(200, 1045), 1)  # ~1024B payload + headers
    41.8
    """
    return frame_bytes / gbps(link_gbps)


def ghz_cycle_ns(freq_ghz: float) -> float:
    """Duration of one CPU cycle in nanoseconds."""
    return 1.0 / freq_ghz
