"""Measurement primitives: counters, gauges, histograms, rate meters.

Every device model exposes its observable state through these classes so
experiments read metrics uniformly. Percentiles use an HDR-style
log-linear-bucket histogram: exact enough for P99.9 reporting at a bounded
memory cost, insensitive to sample count.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "TimeWeightedGauge",
    "Histogram",
    "HistogramSnapshot",
    "RateMeter",
    "TimeSeries",
    "StatRegistry",
    "percentile_from_counts",
]


class Counter:
    """A monotonically increasing count (packets, bytes, misses...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.add() amount must be non-negative")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class TimeWeightedGauge:
    """Tracks a level over time, yielding its time-weighted average and max.

    Typical use: IIO buffer occupancy, ring depth, credit level. Call
    :meth:`update` whenever the level changes.
    """

    def __init__(self, name: str = "", initial: float = 0.0, t0: float = 0.0):
        self.name = name
        self._level = initial
        self._t_last = t0
        self._t_start = t0
        self._area = 0.0
        self._max = initial
        self._min = initial

    @property
    def level(self) -> float:
        return self._level

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min

    def update(self, now: float, level: float) -> None:
        if now < self._t_last:
            raise ValueError("TimeWeightedGauge updated backwards in time")
        self._area += self._level * (now - self._t_last)
        self._t_last = now
        self._level = level
        self._max = max(self._max, level)
        self._min = min(self._min, level)

    def adjust(self, now: float, delta: float) -> None:
        self.update(now, self._level + delta)

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean from construction until ``now``."""
        t_end = self._t_last if now is None else now
        span = t_end - self._t_start
        if span <= 0:
            return self._level
        area = self._area + self._level * (t_end - self._t_last)
        return area / span

    def __repr__(self) -> str:
        return f"TimeWeightedGauge({self.name!r}, level={self._level})"


class HistogramSnapshot:
    """A frozen copy of a histogram's bucket counts at one instant.

    Lets windowed samplers (repro.workloads.slo) compute percentiles over
    the *delta* since the last sample without resetting the histogram the
    measurement window owns.
    """

    __slots__ = ("counts", "count")

    def __init__(self, counts: List[int], count: int):
        self.counts = counts
        self.count = count


def percentile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                           p: float) -> float:
    """Percentile over raw bucket counts (e.g. a snapshot delta).

    Returns the upper bound of the bucket holding the p-th percentile —
    without a per-window max to clamp to, this is a (tight) upper bound,
    which is the conservative direction for SLO checks. 0 when empty.
    """
    if not 0 <= p <= 100:
        raise ValueError("percentile p must be in [0, 100]")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = max(math.ceil(total * p / 100.0), 1)
    cum = 0
    for bound, n in zip(bounds, counts):
        cum += n
        if cum >= target:
            return bound
    return float(bounds[-1])


class Histogram:
    """Log-linear bucket histogram with percentile queries.

    Buckets are exact integers up to ``linear_limit`` then geometric with
    ``growth`` ratio. Values below ``lo`` clamp to the first bucket. Designed
    for latency samples in nanoseconds.
    """

    def __init__(self, name: str = "", lo: float = 1.0,
                 hi: float = 1e10, linear_limit: int = 128,
                 growth: float = 1.03):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        self.name = name
        bounds: List[float] = [float(i) for i in range(1, linear_limit + 1)]
        x = float(linear_limit)
        while x < hi:
            x *= growth
            bounds.append(x)
        self._bounds = bounds  # bucket i covers (bounds[i-1], bounds[i]]
        self._counts = [0] * len(bounds)
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float, n: int = 1) -> None:
        if n <= 0:
            raise ValueError("record() needs n >= 1")
        idx = bisect_left(self._bounds, value)
        if idx >= len(self._counts):
            idx = len(self._counts) - 1
        self._counts[idx] += n
        self.count += n
        self._sum += value * n
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Return the upper bound of the bucket holding the p-th percentile.

        ``p`` is in [0, 100]. Returns 0 for an empty histogram.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile p must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * p / 100.0)
        target = max(target, 1)
        cum = 0
        for bound, n in zip(self._bounds, self._counts):
            cum += n
            if cum >= target:
                return min(bound, self._max)
        return self._max

    def percentiles(self, ps: Sequence[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    @property
    def bounds(self) -> List[float]:
        """Bucket upper bounds (shared by all default-built histograms)."""
        return self._bounds

    def snapshot(self) -> HistogramSnapshot:
        """Freeze current bucket counts for later delta queries."""
        return HistogramSnapshot(list(self._counts), self.count)

    def delta_counts(self, since: Optional[HistogramSnapshot]) -> List[int]:
        """Bucket counts accumulated since ``since`` (None = all)."""
        if since is None:
            return list(self._counts)
        return [c - s for c, s in zip(self._counts, since.counts)]

    def merge(self, other: "Histogram") -> None:
        if len(other._counts) != len(self._counts):
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other._counts):
            self._counts[i] += n
        self.count += other.count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"mean={self.mean:.1f})")


class RateMeter:
    """Windowed rate estimator (events or bytes per nanosecond).

    Keeps per-window sums; :meth:`rate` reports the average over the most
    recent complete windows. Used for NIC-core throughput monitoring and
    the HostCC PCIe-bandwidth signal.
    """

    def __init__(self, name: str = "", window: float = 10_000.0,
                 keep: int = 8):
        if window <= 0 or keep < 1:
            raise ValueError("window must be > 0 and keep >= 1")
        self.name = name
        self.window = window
        self.keep = keep
        self._cur_start = 0.0
        self._cur_sum = 0.0
        self._history: Deque[float] = deque(maxlen=keep)
        self.total = 0.0

    def _roll(self, now: float) -> None:
        """Close every complete window before ``now``.

        The advance is arithmetic, not a per-window loop: a meter first
        queried after a long idle gap (e.g. a drained link probed at the
        end of a run) pays O(keep), not O(gap / window).
        """
        gap = int((now - self._cur_start) // self.window)
        if gap <= 0:
            return
        history = self._history
        if gap > self.keep:
            # The current sum and everything retained would be pushed out
            # by the empty windows in between.
            history.clear()
            history.extend([0.0] * self.keep)
        else:
            history.append(self._cur_sum)
            if gap > 1:
                history.extend([0.0] * (gap - 1))
        self._cur_sum = 0.0
        self._cur_start += gap * self.window

    def record(self, now: float, amount: float = 1.0) -> None:
        self._roll(now)
        self._cur_sum += amount
        self.total += amount

    def rate(self, now: float) -> float:
        """Average rate per ns over retained complete windows."""
        self._roll(now)
        if not self._history:
            elapsed = now - self._cur_start
            return self._cur_sum / elapsed if elapsed > 0 else 0.0
        return sum(self._history) / (len(self._history) * self.window)

    def mean_rate(self, now: float) -> float:
        return self.total / now if now > 0 else 0.0


class TimeSeries:
    """A recorded sequence of (time, value) points for report plotting."""

    def __init__(self, name: str = ""):
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, now: float, value: float) -> None:
        self.points.append((now, value))

    def times(self) -> List[float]:
        return [t for t, _v in self.points]

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def __len__(self) -> int:
        return len(self.points)


class StatRegistry:
    """Flat namespace of named metrics for one simulation run."""

    def __init__(self) -> None:
        self._stats: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, Counter)

    def gauge(self, name: str, t0: float = 0.0) -> TimeWeightedGauge:
        return self._get_or_make(name, lambda n: TimeWeightedGauge(n, t0=t0))

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get_or_make(name, lambda n: Histogram(n, **kwargs))

    def rate_meter(self, name: str, **kwargs) -> RateMeter:
        return self._get_or_make(name, lambda n: RateMeter(n, **kwargs))

    def timeseries(self, name: str) -> TimeSeries:
        return self._get_or_make(name, TimeSeries)

    def _get_or_make(self, name: str, factory):
        stat = self._stats.get(name)
        if stat is None:
            stat = factory(name)
            self._stats[name] = stat
        return stat

    def get(self, name: str):
        return self._stats.get(name)

    def names(self) -> List[str]:
        return sorted(self._stats)

    def __contains__(self, name: str) -> bool:
        return name in self._stats
