"""Discrete-event simulation kernel used by all device and network models."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    SimulationError,
    Timeout,
)
from .resources import Container, Resource, Store, TokenBucket
from .rng import RngRegistry
from .trace import NullTracer, TraceEvent, Tracer
from .stats import (
    Counter,
    Histogram,
    RateMeter,
    StatRegistry,
    TimeSeries,
    TimeWeightedGauge,
)
from . import units

__all__ = [
    "Simulator", "Event", "Timeout", "Process", "Interrupt",
    "AnyOf", "AllOf", "SimulationError",
    "Store", "Container", "Resource", "TokenBucket",
    "RngRegistry",
    "Counter", "TimeWeightedGauge", "Histogram", "RateMeter",
    "TimeSeries", "StatRegistry",
    "NullTracer", "TraceEvent", "Tracer",
    "units",
]
