"""Table 3: ib_write_lat latency of the fast and slow paths."""


def test_table3_path_latency(check):
    check("table3")
