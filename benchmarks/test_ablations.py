"""Design-choice ablations: lazy release, phase exclusivity, cache model."""


def test_design_ablations(check):
    check("ablations")
