"""Figure 11: CEIO fast/slow path bandwidth vs perftest ib_write_bw."""


def test_fig11_path_bandwidth(check):
    check("fig11")
