"""Table 2: P99/P99.9 latency under the 512 B echo workload."""


def test_table2_tail_latency(check):
    check("table2")
