"""Shard-scaling benchmark: aggregate events/sec vs shard count.

Runs a 64-host incast (4x2 leaf-spine, one KV receiver, 48 client
flows crossing the spine fabric) through ``repro.shard.run_sharded``
at 1, 2, and 4 shards and records aggregate scheduler events per
wall-clock second. The workload is byte-identical at every shard count
(that is the `docs/SHARDING.md` contract, asserted here too), so the
event total is a fixed denominator and the ratio is pure execution
cost.

What the numbers mean depends on the hardware:

- on >= 4 cores, process mode can overlap shard execution and the
  4-shard run should show real speedup (the acceptance target is
  >= 2x aggregate events/sec);
- on fewer cores there is nothing to overlap, so the harness instead
  *bounds coordination overhead*: the inline 4-shard run pays the full
  barrier/channel machinery with zero parallelism, and its slowdown
  vs the single kernel must stay <= 15%.

Results are written to ``BENCH_shard.json`` next to the repo root so
the numbers form a trajectory across commits. Run standalone::

    PYTHONPATH=src python benchmarks/test_shard_scaling.py

or through pytest (a scaled-down smoke with loose bounds so CI catches
catastrophic regressions without being flaky)::

    PYTHONPATH=src python -m pytest benchmarks/test_shard_scaling.py -v
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict

from repro.shard import run_sharded

#: Shard counts measured by the standalone run.
SHARD_COUNTS = (1, 2, 4)

#: Acceptance bound for the single-core path: inline 4-shard slowdown
#: vs the single kernel (wall-clock ratio minus one).
OVERHEAD_BOUND = 0.15

#: Acceptance target for the multi-core path: 4-shard process-mode
#: aggregate events/sec over the single kernel's.
SPEEDUP_TARGET = 2.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = _REPO_ROOT / "BENCH_shard.json"


def incast64_spec(warmup_us: float = 100.0,
                  duration_us: float = 250.0) -> Dict[str, Any]:
    """A 64-host incast: 4 leaves x 16 hosts (one storage server per
    leaf), 2 spines, 48 KV flows fanning into ``l0s0`` — three quarters
    of the traffic crosses the spine, so every shard boundary carries
    real load."""
    return {
        "version": 1,
        "name": "incast-64host",
        "seed": 0,
        "topology": {"kind": "leaf_spine",
                     "params": {"leaves": 4, "spines": 2,
                                "hosts_per_leaf": 16,
                                "servers_per_leaf": 1}},
        "hosts": {"*": {"arch": "ceio", "cores": 50}},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "host": "l0s0",
             "flows": 48, "payload": 144, "outstanding": 8},
        ],
        "measure": {"warmup_us": warmup_us, "duration_us": duration_us},
    }


def _timed_run(spec: Dict[str, Any], shards: int, mode: str):
    """One sharded run; returns ``(payload, stats, wall seconds)``."""
    stats: Dict[str, Any] = {}
    t0 = time.perf_counter()
    results = run_sharded(spec, shards, mode=mode, stats=stats)
    elapsed = time.perf_counter() - t0
    return json.dumps(results, sort_keys=True), stats, elapsed


def run_matrix(spec: Dict[str, Any], mode: str) -> Dict[str, Any]:
    """Run ``spec`` at every shard count, assert byte-identity, and
    return the measurement record (rates keyed by shard count)."""
    baseline_payload = None
    n_events = None
    wall: Dict[str, float] = {}
    rates: Dict[str, float] = {}
    rounds: Dict[str, int] = {}
    for shards in SHARD_COUNTS:
        payload, stats, elapsed = _timed_run(
            spec, shards, mode if shards > 1 else "inline")
        if baseline_payload is None:
            baseline_payload = payload
        elif payload != baseline_payload:
            raise AssertionError(
                f"--shards {shards} diverged from the single kernel")
        if stats.get("events"):
            # The union of shard calendars is the single kernel's, so
            # the total is the same fixed denominator for every row.
            n_events = sum(stats["events"])
        wall[str(shards)] = round(elapsed, 3)
        rounds[str(shards)] = stats.get("rounds", 0)
    for shards in SHARD_COUNTS:
        rates[str(shards)] = round(n_events / wall[str(shards)], 1)
    overhead = wall["4"] / wall["1"] - 1.0
    speedup = rates["4"] / rates["1"]
    return {
        "mode": mode,
        "n_events": n_events,
        "barrier_rounds": rounds,
        "wall_s": wall,
        "events_per_sec": rates,
        "overhead_4_vs_1": round(overhead, 4),
        "speedup_4_vs_1": round(speedup, 4),
    }


def main() -> int:
    cores = os.cpu_count() or 1
    # With >= 4 cores, process mode can genuinely overlap shards and
    # the claim is speedup; below that, parallel workers only add IPC
    # on top of a time-shared CPU, so the honest measurement is the
    # inline executor's coordination overhead.
    mode = "process" if cores >= 4 else "inline"
    record = run_matrix(incast64_spec(), mode)
    if cores >= 4:
        claim = {"kind": "speedup",
                 "target": SPEEDUP_TARGET,
                 "measured": record["speedup_4_vs_1"],
                 "ok": record["speedup_4_vs_1"] >= SPEEDUP_TARGET}
    else:
        claim = {"kind": "coordination_overhead",
                 "bound": OVERHEAD_BOUND,
                 "measured": record["overhead_4_vs_1"],
                 "ok": record["overhead_4_vs_1"] <= OVERHEAD_BOUND}
    payload = {
        "bench": "shard_scaling",
        "scenario": "incast-64host (4x2 leaf-spine, 48 flows)",
        "python": sys.version.split()[0],
        "cores": cores,
        "claim": claim,
        **record,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
    for shards in SHARD_COUNTS:
        key = str(shards)
        print(f"shards={shards}  {record['events_per_sec'][key]:>12,.0f}"
              f" events/sec  ({record['wall_s'][key]:.2f}s,"
              f" {record['barrier_rounds'][key]} rounds)")
    print(f"{claim['kind']}: {claim['measured']} "
          f"({'OK' if claim['ok'] else 'FAILED'})")
    print(f"wrote {BENCH_PATH}")
    return 0 if claim["ok"] else 1


# ---------------------------------------------------------------------------
# Pytest entry points (scaled-down smoke: loose bounds only)
# ---------------------------------------------------------------------------

def test_shard_scaling_smoke():
    """Tiny window: byte-identity holds and the inline 4-shard run is
    not catastrophically slower than the single kernel (fixed costs
    dominate at this size, so the bound is deliberately loose)."""
    spec = incast64_spec(warmup_us=20.0, duration_us=40.0)
    record = run_matrix(spec, "inline")
    assert record["n_events"] > 0
    assert all(record["events_per_sec"][str(s)] > 0 for s in SHARD_COUNTS)
    assert record["overhead_4_vs_1"] < 1.0


if __name__ == "__main__":
    sys.exit(main())
