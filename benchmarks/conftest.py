"""Shared benchmark plumbing.

Every benchmark runs one reproduction experiment exactly once (pedantic
mode — these are minutes-long simulations, not microbenchmarks), prints
the paper-style table, and asserts the shape checks that define a
successful reproduction.
"""

import pytest

from repro.experiments import run_experiment


def run_and_check(benchmark, exp_id: str, quick: bool = True):
    """Benchmark one experiment and assert its shape checks."""
    result = benchmark.pedantic(run_experiment, args=(exp_id, quick),
                                rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.render())
    failures = [str(c) for c in result.checks if not c.passed]
    assert not failures, "shape checks failed:\n" + "\n".join(failures)
    return result


@pytest.fixture
def check(benchmark):
    def _run(exp_id: str, quick: bool = True):
        return run_and_check(benchmark, exp_id, quick)
    return _run
