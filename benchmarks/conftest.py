"""Shared benchmark plumbing.

Every benchmark runs one reproduction experiment exactly once (pedantic
mode — these are minutes-long simulations, not microbenchmarks), prints
the paper-style table, and asserts the shape checks that define a
successful reproduction.

Set ``REPRO_BENCH_CACHE=1`` to route experiments through
``repro.runner``'s content-addressed result cache (``.repro_cache/``):
simulation points completed by a previous benchmark run — or by a
``python -m repro.experiments`` sweep — are reused instead of recomputed.
The cache key includes a fingerprint of the ``repro`` sources, so edits
to the simulator invalidate stale entries automatically. (Benchmark
*timings* then measure collection, not simulation — use the default
uncached mode when the wall-clock numbers matter.)
"""

import os

import pytest

from repro.experiments import run_experiment
from repro.runner import RunnerOptions, run_experiment_cached


def _use_cache() -> bool:
    return os.environ.get("REPRO_BENCH_CACHE", "") not in ("", "0")


def _run(exp_id: str, quick: bool = True):
    if _use_cache():
        return run_experiment_cached(
            exp_id, quick=quick,
            options=RunnerOptions(quiet=True, retries=0))
    return run_experiment(exp_id, quick)


def run_and_check(benchmark, exp_id: str, quick: bool = True):
    """Benchmark one experiment and assert its shape checks."""
    result = benchmark.pedantic(_run, args=(exp_id, quick),
                                rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(result.render())
    failures = [str(c) for c in result.checks if not c.passed]
    assert not failures, "shape checks failed:\n" + "\n".join(failures)
    return result


@pytest.fixture
def check(benchmark):
    def _run_fixture(exp_id: str, quick: bool = True):
        return run_and_check(benchmark, exp_id, quick)
    return _run_fixture
