"""Engine hot-path microbenchmark: events/sec through the DES kernel.

Unlike the experiment benchmarks (minutes-long simulations), this measures
the kernel itself: how many scheduler events per wall-clock second the
`Simulator` sustains on the two workload shapes that dominate every
reproduction run:

- **timer-churn** — many processes doing ``yield <delay>`` in a tight loop
  (the firmware/link/DMA serialisation idiom);
- **producer-consumer** — processes rendezvousing through a
  :class:`~repro.sim.Store` with a serialisation timeout per item (the
  ring/queue idiom);
- **callback-chain** — ``call_later`` callables rescheduling themselves
  (the propagation-delay / control-tick idiom).

Results are written to ``BENCH_engine.json`` next to the repo root so the
numbers form a trajectory across commits. Run standalone::

    PYTHONPATH=src python benchmarks/test_engine_hotpath.py

or through pytest (each workload is also a test with a loose floor so CI
catches catastrophic regressions without being flaky)::

    PYTHONPATH=src python -m pytest benchmarks/test_engine_hotpath.py -v
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.sim import Simulator, Store

#: Events per workload run. Large enough that interpreter warm-up noise is
#: <1%, small enough that the whole file runs in a few seconds.
N_EVENTS = 200_000

#: CI smoke floor (events/sec): an order of magnitude below what even the
#: pre-refactor kernel sustains, so only a catastrophic regression trips it.
FLOOR = 20_000.0

_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = _REPO_ROOT / "BENCH_engine.json"


def _bench(fn, *args):
    """Run ``fn`` once for warm-up, then timed; returns events/sec."""
    fn(*args)  # warm-up: heap growth, bytecode caches
    t0 = time.perf_counter()
    events = fn(*args)
    elapsed = time.perf_counter() - t0
    return events / elapsed


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def timer_churn(n_procs: int = 32, n_events: int = N_EVENTS) -> int:
    """Many processes suspending on plain timeouts in a tight loop."""
    sim = Simulator()
    per_proc = n_events // n_procs

    def ticker(period):
        for _ in range(per_proc):
            yield sim.timeout(period)

    for i in range(n_procs):
        sim.process(ticker(1.0 + 0.1 * i), name=f"tick{i}")
    sim.run()
    return n_procs * per_proc


def producer_consumer(n_pairs: int = 8, n_events: int = N_EVENTS) -> int:
    """Producer/consumer pairs rendezvousing through a bounded Store."""
    sim = Simulator()
    per_pair = n_events // (4 * n_pairs)  # 4 kernel events per item

    def producer(store):
        for i in range(per_pair):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer(store):
        for _ in range(per_pair):
            yield store.get()
            yield sim.timeout(1.5)

    for i in range(n_pairs):
        store = Store(sim, capacity=16, name=f"q{i}")
        sim.process(producer(store), name=f"prod{i}")
        sim.process(consumer(store), name=f"cons{i}")
    sim.run()
    return 4 * n_pairs * per_pair


def callback_chain(n_chains: int = 16, n_events: int = N_EVENTS) -> int:
    """Self-rescheduling plain callables (the ``call_later`` idiom)."""
    sim = Simulator()
    per_chain = n_events // n_chains
    # Fall back to schedule() on kernels that predate call_later so the
    # benchmark can measure the pre-refactor baseline too.
    call_later = getattr(sim, "call_later", None) or (
        lambda delay, fn: sim.schedule(delay, fn))

    remaining = [per_chain] * n_chains

    def make_tick(idx, period):
        def tick():
            remaining[idx] -= 1
            if remaining[idx] > 0:
                call_later(period, tick)
        return tick

    for i in range(n_chains):
        call_later(0.5 * (i + 1), make_tick(i, 1.0 + 0.01 * i))
    sim.run()
    return n_chains * per_chain


WORKLOADS = {
    "timer_churn": timer_churn,
    "producer_consumer": producer_consumer,
    "callback_chain": callback_chain,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def run_all() -> dict:
    results = {}
    for name, fn in WORKLOADS.items():
        rate = _bench(fn)
        results[name] = round(rate, 1)
    return results


def write_json(results: dict) -> None:
    payload = {
        "bench": "engine_hotpath",
        "n_events": N_EVENTS,
        "python": sys.version.split()[0],
        "events_per_sec": results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")


def main() -> int:
    results = run_all()
    for name, rate in results.items():
        print(f"{name:<20} {rate:>12,.0f} events/sec")
    write_json(results)
    print(f"wrote {BENCH_PATH}")
    return 0


# ---------------------------------------------------------------------------
# Pytest entry points (non-gating smoke: loose floors only)
# ---------------------------------------------------------------------------

def test_timer_churn_smoke():
    assert _bench(timer_churn, 32, 20_000) > FLOOR


def test_producer_consumer_smoke():
    assert _bench(producer_consumer, 8, 20_000) > FLOOR


def test_callback_chain_smoke():
    assert _bench(callback_chain, 16, 20_000) > FLOOR


if __name__ == "__main__":
    sys.exit(main())
