"""Figure 12: thousand-flow UD churn and the active-flow strategy."""


def test_fig12_flow_scaling(check):
    check("fig12")
