"""Figure 10: end-to-end comparison under dynamic flow distribution and
network burst, all four architectures."""


def test_fig10a_dynamic_flow_distribution(check):
    check("fig10a")


def test_fig10b_network_burst(check):
    check("fig10b")
