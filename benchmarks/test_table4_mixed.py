"""Table 4: mixed CPU-involved/CPU-bypass flows and the CEIO ablations."""


def test_table4_mixed_flows(check):
    check("table4")
