"""Figure 4 (motivation): HostCC and ShRing degrade under dynamic
conditions — slow reactive response and fixed-buffer CCA triggering."""


def test_fig04a_dynamic_flow_distribution(check):
    check("fig04a")


def test_fig04b_network_burst(check):
    check("fig04b")
