"""§6.3 negative results: low memory pressure and jumbo frames."""


def test_limited_benefit_scenarios(check):
    check("limits")
