"""§6.4 lessons: zero-copy necessity and transport agnosticism."""


def test_lessons_learned(check):
    check("lessons")
