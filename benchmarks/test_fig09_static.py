"""Figure 9: throughput + LLC miss rate vs packet size under static load,
for eRPC(DPDK), eRPC(RDMA) and LineFS panels."""


def test_fig09_static_sweep(check):
    check("fig09")
